//! LST-Bench-style workload drivers (Figures 10–12).
//!
//! * **SU** — "Single User" power run: the [`crate::tpcds::su_queries`]
//!   set executed sequentially.
//! * **DM** — "Data Maintenance": 2 INSERT statements and 6 DELETE
//!   statements per phase (the paper's Figure 11 notes each DM phase plus
//!   two compactions yields exactly 10 new manifests).
//! * **WP1** — alternate SU and DM phases with the autonomous STO running
//!   between them (longevity / storage-health experiment).
//! * **WP3** — SU concurrent with DM, SU alone, SU concurrent with an
//!   explicit optimize loop (concurrency experiment).

use crate::tpcds;
use polaris_core::{sto, PolarisEngine, PolarisResult};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Create and load the six TPC-DS-like tables at scale factor `sf`.
pub fn setup_tpcds(engine: &Arc<PolarisEngine>, sf: f64, seed: u64) -> PolarisResult<()> {
    let mut session = engine.session();
    for table in tpcds::tables() {
        session.execute(&tpcds::ddl_of(&table))?;
        let data = tpcds::generate(&table, sf, seed);
        session.insert_batch(&table, &data)?;
    }
    Ok(())
}

/// Timing of one SU power run.
#[derive(Debug, Clone)]
pub struct SuReport {
    /// `(query name, latency)` in execution order.
    pub queries: Vec<(String, Duration)>,
    /// Wall-clock total.
    pub total: Duration,
}

/// Run the SU query set once.
pub fn run_su(engine: &Arc<PolarisEngine>) -> PolarisResult<SuReport> {
    let mut session = engine.session();
    let started = Instant::now();
    let mut queries = Vec::new();
    for (name, sql) in tpcds::su_queries() {
        let t = Instant::now();
        session.query(&sql)?;
        queries.push((name, t.elapsed()));
    }
    Ok(SuReport {
        queries,
        total: started.elapsed(),
    })
}

/// Outcome of one DM phase.
#[derive(Debug, Clone, Copy)]
pub struct DmReport {
    /// Rows inserted across the 2 INSERT statements.
    pub inserted: u64,
    /// Rows deleted across the 6 DELETE statements.
    pub deleted: u64,
    /// Wall-clock total.
    pub duration: Duration,
}

/// Run one DM phase: 2 INSERTs (catalog_sales, store_sales) then 6 DELETEs
/// (every table, catalog first, web last — the Figure 11 touch order).
///
/// `phase` indexes the key ranges so successive phases insert fresh keys
/// and delete earlier ones.
pub fn run_dm(
    engine: &Arc<PolarisEngine>,
    phase: usize,
    sf: f64,
    seed: u64,
) -> PolarisResult<DmReport> {
    let started = Instant::now();
    let mut session = engine.session();
    let batch_rows = (tpcds::SALES_ROWS_PER_SF as f64 * sf * 0.1).max(8.0) as usize;
    let mut inserted = 0u64;
    // 2 INSERT statements.
    for table in ["catalog_sales", "store_sales"] {
        let base = tpcds::rows_at(table, sf);
        let start = base + phase * batch_rows;
        let data = tpcds::generate_range(table, sf, seed ^ 0xD4, start, start + batch_rows);
        inserted += session.insert_batch(table, &data)?;
    }
    // 6 DELETE statements: a sliding key range per phase.
    let mut deleted = 0u64;
    for table in tpcds::tables() {
        let total = tpcds::rows_at(&table, sf);
        let window = (total / 20).max(2);
        let lo = (phase * window) % total.max(1);
        let hi = lo + window;
        let out = session.execute(&format!(
            "DELETE FROM {table} WHERE sk > {lo} AND sk <= {hi}"
        ))?;
        if let polaris_core::StatementOutcome::Affected(n) = out {
            deleted += n;
        }
    }
    Ok(DmReport {
        inserted,
        deleted,
        duration: started.elapsed(),
    })
}

/// One event on the WP1 timeline.
#[derive(Debug, Clone)]
pub enum Wp1Event {
    /// An SU phase completed.
    Su {
        /// Phase index.
        phase: usize,
        /// Power-run timing.
        report: SuReport,
    },
    /// A DM phase completed.
    Dm {
        /// Phase index.
        phase: usize,
        /// Maintenance counts.
        report: DmReport,
    },
    /// Health sampled for a table (Figure 10's green/red bars).
    Health {
        /// Phase index the sample was taken after.
        phase: usize,
        /// Offset from the start of the run.
        at: Duration,
        /// Whether this sample is before or after the STO pass.
        after_sto: bool,
        /// The health snapshot.
        health: sto::TableHealth,
    },
    /// The STO ran (compactions / checkpoints / publishing).
    Sto {
        /// Phase index.
        phase: usize,
        /// Tick summary.
        report: sto::StoTickReport,
    },
    /// A checkpoint was created for a table (Figure 11's lifetimes).
    Checkpoint {
        /// Phase index.
        phase: usize,
        /// Offset from the start of the run.
        at: Duration,
        /// Table name.
        table: String,
        /// Sequence covered through.
        covers: polaris_core::SequenceId,
    },
}

/// Run WP1: `phases` rounds of (SU; DM; STO pass), sampling storage health
/// before and after each STO pass.
pub fn run_wp1(
    engine: &Arc<PolarisEngine>,
    phases: usize,
    sf: f64,
    seed: u64,
) -> PolarisResult<Vec<Wp1Event>> {
    let started = Instant::now();
    let mut events = Vec::new();
    for phase in 0..phases {
        events.push(Wp1Event::Su {
            phase,
            report: run_su(engine)?,
        });
        events.push(Wp1Event::Dm {
            phase,
            report: run_dm(engine, phase, sf, seed)?,
        });
        // Health right after DM: fragmentation shows as "red".
        for table in tpcds::tables() {
            events.push(Wp1Event::Health {
                phase,
                at: started.elapsed(),
                after_sto: false,
                health: sto::table_health(engine, &table)?,
            });
        }
        // Autonomous pass: compaction + checkpointing + publish + GC. Run
        // twice, as the paper's DM phase interleaves two compactions.
        let mut tick = sto::run_once(engine)?;
        let second = sto::run_once(engine)?;
        tick.compactions += second.compactions;
        tick.checkpoints += second.checkpoints;
        tick.published += second.published;
        tick.gc_deleted += second.gc_deleted;
        events.push(Wp1Event::Sto {
            phase,
            report: tick,
        });
        for table in tpcds::tables() {
            let mut ctxn = engine.catalog().begin(Default::default());
            let meta = engine.catalog().table_by_name(&mut ctxn, &table)?;
            let ckpts = engine.catalog().checkpoints(&mut ctxn, meta.id)?;
            engine.catalog().abort(&mut ctxn);
            if let Some((covers, _)) = ckpts.last() {
                events.push(Wp1Event::Checkpoint {
                    phase,
                    at: started.elapsed(),
                    table: table.clone(),
                    covers: *covers,
                });
            }
            events.push(Wp1Event::Health {
                phase,
                at: started.elapsed(),
                after_sto: true,
                health: sto::table_health(engine, &table)?,
            });
        }
    }
    Ok(events)
}

/// Result of the WP3 concurrency experiment.
#[derive(Debug, Clone)]
pub struct Wp3Report {
    /// SU concurrent with DM.
    pub su_with_dm: SuReport,
    /// SU alone (between the concurrent phases).
    pub su_alone: SuReport,
    /// SU concurrent with an explicit optimize loop.
    pub su_with_optimize: SuReport,
    /// DM work done during the concurrent phase.
    pub dm: DmReport,
}

/// Run WP3: the three phases of Figure 12.
pub fn run_wp3(engine: &Arc<PolarisEngine>, sf: f64, seed: u64) -> PolarisResult<Wp3Report> {
    // Phase 1: SU concurrent with DM (separate WLM pools isolate them, but
    // SU latencies still rise: each query sees freshly committed data, so
    // caches miss and snapshots extend). The DM stream — with the
    // autonomous STO reacting to it — keeps running for the whole SU
    // phase, as in LST-Bench.
    use std::sync::atomic::{AtomicBool, Ordering};
    let stop = Arc::new(AtomicBool::new(false));
    let dm_stop = Arc::clone(&stop);
    let dm_engine = Arc::clone(engine);
    let dm_handle = std::thread::spawn(move || -> PolarisResult<DmReport> {
        let mut total = DmReport {
            inserted: 0,
            deleted: 0,
            duration: Duration::ZERO,
        };
        let mut phase = 100;
        while !dm_stop.load(Ordering::SeqCst) {
            let r = run_dm(&dm_engine, phase, sf, seed)?;
            total.inserted += r.inserted;
            total.deleted += r.deleted;
            total.duration += r.duration;
            // Autonomous maintenance reacts to the churn mid-stream.
            let _ = sto::run_once(&dm_engine);
            phase += 1;
        }
        Ok(total)
    });
    let su_with_dm = run_su(engine)?;
    stop.store(true, Ordering::SeqCst);
    let dm = dm_handle.join().expect("dm thread must not panic")?;

    // Phase 2: SU alone. One unmeasured pass first re-warms the BE caches
    // the DM churn invalidated — standing in for the amortization the
    // paper's 99-query stream gets naturally.
    run_su(engine)?;
    let su_alone = run_su(engine)?;

    // Phase 3: SU concurrent with optimize (explicit compaction pass — in
    // Polaris the autonomous STO makes this phase unnecessary; we run it
    // for benchmark parity). The optimize loop runs for the whole phase.
    let opt_stop = Arc::new(AtomicBool::new(false));
    let opt_stop2 = Arc::clone(&opt_stop);
    let opt_engine = Arc::clone(engine);
    let opt_handle = std::thread::spawn(move || -> PolarisResult<()> {
        while !opt_stop2.load(Ordering::SeqCst) {
            for table in tpcds::tables() {
                // Conflicts with concurrent queries cannot happen (reads
                // never conflict); conflicts between optimizers retry.
                match sto::compact_table(&opt_engine, &table) {
                    Ok(_) => {}
                    Err(e) if e.is_retryable_conflict() => {}
                    Err(e) => return Err(e),
                }
                sto::checkpoint_table(&opt_engine, &table)?;
            }
        }
        Ok(())
    });
    let su_with_optimize = run_su(engine)?;
    opt_stop.store(true, Ordering::SeqCst);
    opt_handle.join().expect("optimize thread must not panic")?;

    Ok(Wp3Report {
        su_with_dm,
        su_alone,
        su_with_optimize,
        dm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_engine() -> Arc<PolarisEngine> {
        PolarisEngine::in_memory()
    }

    #[test]
    fn setup_and_su_run() {
        let engine = small_engine();
        setup_tpcds(&engine, 0.05, 1).unwrap();
        let report = run_su(&engine).unwrap();
        assert_eq!(report.queries.len(), 12);
        assert!(report.total > Duration::ZERO);
    }

    #[test]
    fn dm_phase_inserts_and_deletes() {
        let engine = small_engine();
        setup_tpcds(&engine, 0.05, 1).unwrap();
        let r = run_dm(&engine, 0, 0.05, 1).unwrap();
        assert!(r.inserted > 0);
        assert!(r.deleted > 0, "sliding delete window must hit rows");
        // phase 1 deletes a different window
        let r2 = run_dm(&engine, 1, 0.05, 1).unwrap();
        assert!(r2.deleted > 0);
    }

    #[test]
    fn wp1_produces_health_timeline() {
        let engine = small_engine();
        setup_tpcds(&engine, 0.03, 2).unwrap();
        let events = run_wp1(&engine, 2, 0.03, 2).unwrap();
        let unhealthy_before = events.iter().any(|e| {
            matches!(e, Wp1Event::Health { after_sto: false, health, .. } if !health.is_healthy())
        });
        let healthy_after_last = events
            .iter()
            .rev()
            .filter_map(|e| match e {
                Wp1Event::Health {
                    after_sto: true,
                    health,
                    ..
                } => Some(health.is_healthy()),
                _ => None,
            })
            .take(6)
            .all(|h| h);
        assert!(unhealthy_before, "DM must fragment storage");
        assert!(healthy_after_last, "STO must restore health");
        assert!(events.iter().any(|e| matches!(e, Wp1Event::Sto { .. })));
    }

    #[test]
    fn wp3_concurrency_phases_complete() {
        let engine = small_engine();
        setup_tpcds(&engine, 0.03, 3).unwrap();
        let report = run_wp3(&engine, 0.03, 3).unwrap();
        assert_eq!(report.su_with_dm.queries.len(), 12);
        assert_eq!(report.su_alone.queries.len(), 12);
        assert_eq!(report.su_with_optimize.queries.len(), 12);
        assert!(report.dm.inserted > 0);
    }
}
