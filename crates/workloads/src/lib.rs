//! # polaris-workloads
//!
//! Workload generators and drivers for the evaluation (§7):
//!
//! * [`tpch`] — a TPC-H-*like* schema and data generator, scale-factor
//!   parameterized and deterministic, with the source-file splitting the
//!   ingestion experiments (Figures 7–8) depend on.
//! * [`queries`] — 22 TPC-H-shaped analytic queries (Figure 9) adapted to
//!   the engine's dialect. Absolute semantics differ from the official
//!   TPC-H text where the dialect lacks a construct (no subqueries or
//!   HAVING); the *shape* — scan/join/aggregate mix over the same tables —
//!   is preserved, which is what the latency figures measure.
//! * [`tpcds`] — a TPC-DS-*like* sales/returns schema across store,
//!   catalog and web channels, used by the LST-Bench-style workloads
//!   (Figures 10–12).
//! * [`lstbench`] — LST-Bench-style phase drivers: SU (single-user power
//!   run), DM (data maintenance: inserts + deletes), and the WP1/WP3
//!   compositions.

pub mod lstbench;
pub mod queries;
pub mod tpcds;
pub mod tpch;

/// Default RNG seed for callers who want the canonical deterministic
/// datasets (the figure harnesses use explicit seeds per experiment).
pub const SEED: u64 = 0x9e3779b97f4a7c15;
