//! TPC-DS-like sales/returns schema for the LST-Bench-style experiments
//! (Figures 10–12).
//!
//! Six tables across three channels — store, catalog, web — each with a
//! *sales* and a *returns* table, the tables the paper's WP1 data
//! maintenance inserts into and deletes from. Catalog tables are touched
//! first and web tables last in a DM phase, matching the Figure 11
//! narration.

use polaris_columnar::{DataType, Field, RecordBatch, Schema, Value};
use polaris_sql::date_to_days;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Channel prefixes in DM-touch order (catalog first, web last — Fig 11).
pub const CHANNELS: &[&str] = &["catalog", "store", "web"];

/// All table names, in DM-touch order.
pub fn tables() -> Vec<String> {
    CHANNELS
        .iter()
        .flat_map(|c| [format!("{c}_sales"), format!("{c}_returns")])
        .collect()
}

/// Schema of a sales or returns table.
pub fn schema_of(table: &str) -> Schema {
    if table.ends_with("_sales") {
        Schema::new(vec![
            Field::new("sk", DataType::Int64),
            Field::new("item", DataType::Int64),
            Field::new("customer", DataType::Int64),
            Field::new("qty", DataType::Int64),
            Field::new("price", DataType::Float64),
            Field::new("sold_date", DataType::Date32),
        ])
    } else if table.ends_with("_returns") {
        Schema::new(vec![
            Field::new("sk", DataType::Int64),
            Field::new("item", DataType::Int64),
            Field::new("customer", DataType::Int64),
            Field::new("qty", DataType::Int64),
            Field::new("refund", DataType::Float64),
            Field::new("returned_date", DataType::Date32),
        ])
    } else {
        panic!("unknown tpcds table {table}")
    }
}

/// `CREATE TABLE` statement in the engine dialect.
pub fn ddl_of(table: &str) -> String {
    let schema = schema_of(table);
    let cols: Vec<String> = schema
        .fields()
        .iter()
        .map(|f| {
            let ty = match f.data_type {
                DataType::Int64 => "BIGINT",
                DataType::Float64 => "FLOAT",
                DataType::Utf8 => "VARCHAR",
                DataType::Bool => "BIT",
                DataType::Date32 => "DATE",
            };
            format!("{} {}", f.name, ty)
        })
        .collect();
    format!("CREATE TABLE {table} ({})", cols.join(", "))
}

/// Sales rows at scale factor 1.0 (returns tables get a third of this).
pub const SALES_ROWS_PER_SF: usize = 3_000;

/// Row count of a table at a scale factor.
pub fn rows_at(table: &str, sf: f64) -> usize {
    let base = SALES_ROWS_PER_SF as f64 * sf;
    let n = if table.ends_with("_returns") {
        base / 3.0
    } else {
        base
    };
    n.round().max(1.0) as usize
}

/// Generate rows `[start, end)` of a table, keyed consecutively so delete
/// ranges are predictable.
pub fn generate_range(table: &str, _sf: f64, seed: u64, start: usize, end: usize) -> RecordBatch {
    let schema = schema_of(table);
    let is_returns = table.ends_with("_returns");
    let lo = date_to_days(2000, 1, 1);
    let hi = date_to_days(2003, 12, 31);
    let rows: Vec<Vec<Value>> = (start..end)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9e3779b9));
            let money = (rng.gen_range(1.0..500.0_f64) * 100.0).round() / 100.0;
            vec![
                Value::Int(i as i64 + 1),
                Value::Int(rng.gen_range(1..=1000)),
                Value::Int(rng.gen_range(1..=400)),
                Value::Int(rng.gen_range(1..=20)),
                Value::Float(if is_returns { money / 2.0 } else { money }),
                Value::Date(rng.gen_range(lo..=hi)),
            ]
        })
        .collect();
    RecordBatch::from_rows(schema, &rows).expect("generator produces valid rows")
}

/// Generate all rows of a table at scale factor `sf`.
pub fn generate(table: &str, sf: f64, seed: u64) -> RecordBatch {
    generate_range(table, sf, seed, 0, rows_at(table, sf))
}

/// The SU (single-user power run) query set: aggregate and join shapes
/// over the sales/returns tables, standing in for the 99 TPC-DS queries.
pub fn su_queries() -> Vec<(String, String)> {
    let mut out = Vec::new();
    for channel in CHANNELS {
        let sales = format!("{channel}_sales");
        let returns = format!("{channel}_returns");
        out.push((
            format!("{channel}_revenue_by_item"),
            format!(
                "SELECT item, SUM(price) AS revenue, SUM(qty) AS units FROM {sales} \
                 GROUP BY item ORDER BY revenue DESC LIMIT 25"
            ),
        ));
        out.push((
            format!("{channel}_daily_totals"),
            format!(
                "SELECT sold_date, COUNT(*) AS n, SUM(price) AS total FROM {sales} \
                 WHERE qty >= 5 GROUP BY sold_date ORDER BY total DESC LIMIT 30"
            ),
        ));
        out.push((
            format!("{channel}_top_customers"),
            format!(
                "SELECT customer, SUM(price) AS spend FROM {sales} \
                 GROUP BY customer ORDER BY spend DESC LIMIT 10"
            ),
        ));
        out.push((
            format!("{channel}_return_rate"),
            format!(
                "SELECT s.item, COUNT(*) AS returned, SUM(refund) AS refunded \
                 FROM {returns} r JOIN {sales} s ON r.item = s.item \
                 GROUP BY s.item ORDER BY refunded DESC LIMIT 20"
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_tables_catalog_first_web_last() {
        let ts = tables();
        assert_eq!(ts.len(), 6);
        assert_eq!(ts[0], "catalog_sales");
        assert_eq!(ts[5], "web_returns");
    }

    #[test]
    fn generator_is_deterministic_and_keyed() {
        let a = generate("store_sales", 0.1, 9);
        let b = generate("store_sales", 0.1, 9);
        assert_eq!(a, b);
        // keys are 1..=n
        let sk = a.column_by_name("sk").unwrap();
        assert_eq!(sk.value(0), Value::Int(1));
        assert_eq!(sk.value(a.num_rows() - 1), Value::Int(a.num_rows() as i64));
    }

    #[test]
    fn su_queries_parse_and_plan() {
        for (name, sql) in su_queries() {
            let stmt =
                polaris_sql::parse(&sql).unwrap_or_else(|e| panic!("{name} failed to parse: {e}"));
            let polaris_sql::Statement::Select(sel) = stmt else {
                panic!("{name}")
            };
            polaris_sql::plan_select(&sel).unwrap_or_else(|e| panic!("{name} failed to plan: {e}"));
        }
        assert_eq!(su_queries().len(), 12);
    }

    #[test]
    fn ddl_parses() {
        for t in tables() {
            assert!(polaris_sql::parse(&ddl_of(&t)).is_ok());
        }
    }

    #[test]
    fn returns_are_a_third_of_sales() {
        assert_eq!(rows_at("store_sales", 1.0), 3000);
        assert_eq!(rows_at("store_returns", 1.0), 1000);
    }
}
