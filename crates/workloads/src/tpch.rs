//! TPC-H-like schema and deterministic data generator.
//!
//! Scale factor 1.0 generates `ROWS_PER_SF` lineitem rows (6 000 by
//! default — laptop-scale; the official benchmark's 6 M rows per SF would
//! be a factor 1000 up). Row *ratios* between tables match TPC-H, and the
//! column value distributions are shaped to exercise the same query
//! behaviour: clustered keys, low-cardinality flags, date ranges, skewed
//! prices.

use polaris_columnar::{DataType, Field, RecordBatch, Schema, Value};
use polaris_sql::date_to_days;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Lineitem rows generated per unit of scale factor.
pub const ROWS_PER_SF: usize = 6_000;

/// Names of all TPC-H-like tables, in creation order.
pub const TABLES: &[&str] = &[
    "region", "nation", "supplier", "customer", "part", "orders", "lineitem",
];

/// Schema of a TPC-H-like table.
pub fn schema_of(table: &str) -> Schema {
    match table {
        "lineitem" => Schema::new(vec![
            Field::new("l_orderkey", DataType::Int64),
            Field::new("l_partkey", DataType::Int64),
            Field::new("l_suppkey", DataType::Int64),
            Field::new("l_quantity", DataType::Float64),
            Field::new("l_extendedprice", DataType::Float64),
            Field::new("l_discount", DataType::Float64),
            Field::new("l_tax", DataType::Float64),
            Field::new("l_returnflag", DataType::Utf8),
            Field::new("l_linestatus", DataType::Utf8),
            Field::new("l_shipdate", DataType::Date32),
            Field::new("l_shipmode", DataType::Utf8),
        ]),
        "orders" => Schema::new(vec![
            Field::new("o_orderkey", DataType::Int64),
            Field::new("o_custkey", DataType::Int64),
            Field::new("o_totalprice", DataType::Float64),
            Field::new("o_orderdate", DataType::Date32),
            Field::new("o_orderpriority", DataType::Utf8),
        ]),
        "customer" => Schema::new(vec![
            Field::new("c_custkey", DataType::Int64),
            Field::new("c_name", DataType::Utf8),
            Field::new("c_nationkey", DataType::Int64),
            Field::new("c_acctbal", DataType::Float64),
            Field::new("c_mktsegment", DataType::Utf8),
        ]),
        "part" => Schema::new(vec![
            Field::new("p_partkey", DataType::Int64),
            Field::new("p_name", DataType::Utf8),
            Field::new("p_brand", DataType::Utf8),
            Field::new("p_type", DataType::Utf8),
            Field::new("p_retailprice", DataType::Float64),
        ]),
        "supplier" => Schema::new(vec![
            Field::new("s_suppkey", DataType::Int64),
            Field::new("s_name", DataType::Utf8),
            Field::new("s_nationkey", DataType::Int64),
            Field::new("s_acctbal", DataType::Float64),
        ]),
        "nation" => Schema::new(vec![
            Field::new("n_nationkey", DataType::Int64),
            Field::new("n_name", DataType::Utf8),
            Field::new("n_regionkey", DataType::Int64),
        ]),
        "region" => Schema::new(vec![
            Field::new("r_regionkey", DataType::Int64),
            Field::new("r_name", DataType::Utf8),
        ]),
        other => panic!("unknown tpch table {other}"),
    }
}

/// `CREATE TABLE` statement for a table, in the engine dialect.
pub fn ddl_of(table: &str) -> String {
    let schema = schema_of(table);
    let cols: Vec<String> = schema
        .fields()
        .iter()
        .map(|f| {
            let ty = match f.data_type {
                DataType::Int64 => "BIGINT",
                DataType::Float64 => "FLOAT",
                DataType::Utf8 => "VARCHAR",
                DataType::Bool => "BIT",
                DataType::Date32 => "DATE",
            };
            format!("{} {}", f.name, ty)
        })
        .collect();
    format!("CREATE TABLE {table} ({})", cols.join(", "))
}

/// Row count of a table at a given scale factor (TPC-H ratios).
pub fn rows_at(table: &str, sf: f64) -> usize {
    let base = ROWS_PER_SF as f64 * sf;
    (match table {
        "lineitem" => base,
        "orders" => base / 4.0,
        "customer" => base / 40.0,
        "part" => base / 30.0,
        "supplier" => base / 600.0,
        "nation" => return 25,
        "region" => return 5,
        other => panic!("unknown tpch table {other}"),
    })
    .round()
    .max(1.0) as usize
}

const RETURN_FLAGS: &[&str] = &["A", "N", "R"];
const LINE_STATUS: &[&str] = &["F", "O"];
const SHIP_MODES: &[&str] = &["AIR", "RAIL", "SHIP", "TRUCK", "MAIL"];
const SEGMENTS: &[&str] = &[
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];
const PRIORITIES: &[&str] = &["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const BRANDS: &[&str] = &["Brand#11", "Brand#12", "Brand#23", "Brand#34", "Brand#55"];
const TYPES: &[&str] = &["ECONOMY", "STANDARD", "PROMO", "SMALL", "LARGE"];
const NATIONS: &[&str] = &[
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "CHINA",
    "ROMANIA",
    "SAUDI ARABIA",
    "VIETNAM",
    "RUSSIA",
    "UNITED KINGDOM",
    "UNITED STATES",
];
const REGIONS: &[&str] = &["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

fn pick<'a>(rng: &mut StdRng, options: &[&'a str]) -> &'a str {
    options[rng.gen_range(0..options.len())]
}

/// Generate all rows of a table at scale factor `sf`, deterministically
/// from `seed`.
pub fn generate(table: &str, sf: f64, seed: u64) -> RecordBatch {
    let n = rows_at(table, sf);
    generate_range(table, sf, seed, 0, n)
}

/// Generate rows `[start, end)` of a table — the source-file split used by
/// the ingestion experiments: each "source file" of the paper's load is
/// one contiguous key range.
pub fn generate_range(table: &str, sf: f64, seed: u64, start: usize, end: usize) -> RecordBatch {
    let schema = schema_of(table);
    let orders = rows_at("orders", sf) as i64;
    let customers = rows_at("customer", sf) as i64;
    let parts = rows_at("part", sf) as i64;
    let suppliers = rows_at("supplier", sf) as i64;
    let epoch_lo = date_to_days(1992, 1, 1);
    let epoch_hi = date_to_days(1998, 12, 1);
    let rows: Vec<Vec<Value>> = (start..end)
        .map(|i| {
            // Seed per row so ranges are independent of split boundaries.
            let mut rng = StdRng::seed_from_u64(seed ^ hash2(table_tag(table), i as u64));
            let key = i as i64 + 1;
            match table {
                "lineitem" => vec![
                    Value::Int(rng.gen_range(1..=orders.max(1))),
                    Value::Int(rng.gen_range(1..=parts.max(1))),
                    Value::Int(rng.gen_range(1..=suppliers.max(1))),
                    Value::Float(rng.gen_range(1.0..50.0_f64).round()),
                    Value::Float((rng.gen_range(900.0..105_000.0_f64) * 100.0).round() / 100.0),
                    Value::Float((rng.gen_range(0.0..0.1_f64) * 100.0).round() / 100.0),
                    Value::Float((rng.gen_range(0.0..0.08_f64) * 100.0).round() / 100.0),
                    Value::Str(pick(&mut rng, RETURN_FLAGS).to_owned()),
                    Value::Str(pick(&mut rng, LINE_STATUS).to_owned()),
                    Value::Date(rng.gen_range(epoch_lo..=epoch_hi)),
                    Value::Str(pick(&mut rng, SHIP_MODES).to_owned()),
                ],
                "orders" => vec![
                    Value::Int(key),
                    Value::Int(rng.gen_range(1..=customers.max(1))),
                    Value::Float((rng.gen_range(1_000.0..500_000.0_f64) * 100.0).round() / 100.0),
                    Value::Date(rng.gen_range(epoch_lo..=epoch_hi)),
                    Value::Str(pick(&mut rng, PRIORITIES).to_owned()),
                ],
                "customer" => vec![
                    Value::Int(key),
                    Value::Str(format!("Customer#{key:09}")),
                    Value::Int(rng.gen_range(0..25)),
                    Value::Float((rng.gen_range(-999.0..10_000.0_f64) * 100.0).round() / 100.0),
                    Value::Str(pick(&mut rng, SEGMENTS).to_owned()),
                ],
                "part" => vec![
                    Value::Int(key),
                    Value::Str(format!("part {key} {}", pick(&mut rng, TYPES))),
                    Value::Str(pick(&mut rng, BRANDS).to_owned()),
                    Value::Str(pick(&mut rng, TYPES).to_owned()),
                    Value::Float((rng.gen_range(900.0..2_000.0_f64) * 100.0).round() / 100.0),
                ],
                "supplier" => vec![
                    Value::Int(key),
                    Value::Str(format!("Supplier#{key:09}")),
                    Value::Int(rng.gen_range(0..25)),
                    Value::Float((rng.gen_range(-999.0..10_000.0_f64) * 100.0).round() / 100.0),
                ],
                "nation" => vec![
                    Value::Int(i as i64),
                    Value::Str(NATIONS[i % NATIONS.len()].to_owned()),
                    Value::Int((i % REGIONS.len()) as i64),
                ],
                "region" => vec![
                    Value::Int(i as i64),
                    Value::Str(REGIONS[i % REGIONS.len()].to_owned()),
                ],
                other => panic!("unknown tpch table {other}"),
            }
        })
        .collect();
    RecordBatch::from_rows(schema, &rows).expect("generator produces valid rows")
}

/// Split a table's rows into `files` contiguous source-file batches — the
/// unit the load cannot parallelize *within*, only across (§7.1).
pub fn source_files(table: &str, sf: f64, seed: u64, files: usize) -> Vec<RecordBatch> {
    assert!(files > 0);
    let total = rows_at(table, sf);
    let per = total.div_ceil(files);
    (0..files)
        .map(|f| {
            let start = f * per;
            let end = ((f + 1) * per).min(total);
            generate_range(table, sf, seed, start, end.max(start))
        })
        .filter(|b| b.num_rows() > 0)
        .collect()
}

fn table_tag(table: &str) -> u64 {
    table
        .bytes()
        .fold(0u64, |acc, b| acc.wrapping_mul(131).wrapping_add(b as u64))
}

fn hash2(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9e3779b97f4a7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 27;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_match_tpch() {
        assert_eq!(rows_at("lineitem", 1.0), 6_000);
        assert_eq!(rows_at("orders", 1.0), 1_500);
        assert_eq!(rows_at("customer", 1.0), 150);
        assert_eq!(rows_at("nation", 10.0), 25);
        assert_eq!(rows_at("region", 0.01), 5);
        assert!(rows_at("supplier", 0.001) >= 1);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate("lineitem", 0.1, 7);
        let b = generate("lineitem", 0.1, 7);
        assert_eq!(a, b);
        let c = generate("lineitem", 0.1, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_compose_into_full_table() {
        let full = generate("orders", 0.1, 3);
        let lo = generate_range("orders", 0.1, 3, 0, 70);
        let hi = generate_range("orders", 0.1, 3, 70, full.num_rows());
        let stitched = RecordBatch::concat(&[lo, hi]).unwrap();
        assert_eq!(stitched, full);
    }

    #[test]
    fn source_files_cover_everything_once() {
        let total = rows_at("lineitem", 0.05);
        let files = source_files("lineitem", 0.05, 1, 7);
        let sum: usize = files.iter().map(RecordBatch::num_rows).sum();
        assert_eq!(sum, total);
        assert!(files.len() <= 7);
    }

    #[test]
    fn schemas_and_ddl_align() {
        for t in TABLES {
            let schema = schema_of(t);
            assert!(!schema.is_empty());
            let ddl = ddl_of(t);
            assert!(ddl.starts_with(&format!("CREATE TABLE {t} ")));
            // DDL round-trips through the parser
            let stmt = polaris_sql::parse(&ddl).unwrap();
            let polaris_sql::Statement::CreateTable { columns, .. } = stmt else {
                panic!("ddl must parse as CREATE TABLE");
            };
            assert_eq!(columns.len(), schema.len());
        }
    }

    #[test]
    fn values_are_in_domain() {
        let li = generate("lineitem", 0.02, 5);
        let flags = li.column_by_name("l_returnflag").unwrap();
        for i in 0..li.num_rows() {
            let v = flags.value(i);
            assert!(RETURN_FLAGS.contains(&v.as_str().unwrap()));
        }
        let disc = li.column_by_name("l_discount").unwrap();
        for i in 0..li.num_rows() {
            let d = disc.value(i).as_float().unwrap();
            assert!((0.0..=0.1).contains(&d));
        }
    }
}
