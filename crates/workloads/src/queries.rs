//! The 22 TPC-H-shaped queries of the Figure 9 experiment.
//!
//! Adapted to the engine dialect: no subqueries, HAVING, CASE or outer
//! joins, so several queries are simplified variants that keep the same
//! table set, join pattern and aggregate mix as their TPC-H namesakes.
//! Query latency shape — which queries are heavy, which are light — is
//! preserved, which is what Figure 9 reports.

/// `(name, sql)` for all 22 queries.
pub fn all() -> Vec<(&'static str, String)> {
    vec![
        // Q1: pricing summary report — the classic wide aggregate.
        ("q01", "SELECT l_returnflag, l_linestatus, \
                 SUM(l_quantity) AS sum_qty, \
                 SUM(l_extendedprice) AS sum_base_price, \
                 SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, \
                 AVG(l_quantity) AS avg_qty, \
                 AVG(l_extendedprice) AS avg_price, \
                 AVG(l_discount) AS avg_disc, \
                 COUNT(*) AS count_order \
                 FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' \
                 GROUP BY l_returnflag, l_linestatus \
                 ORDER BY l_returnflag, l_linestatus"
            .to_owned()),
        // Q2: minimum-cost supplier (simplified: no partsupp correlation).
        ("q02", "SELECT n_name, MIN(s_acctbal) AS min_bal, COUNT(*) AS suppliers \
                 FROM supplier JOIN nation ON s_nationkey = n_nationkey \
                 JOIN region ON n_regionkey = r_regionkey \
                 WHERE r_name = 'EUROPE' GROUP BY n_name ORDER BY min_bal"
            .to_owned()),
        // Q3: shipping priority.
        ("q03", "SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue, \
                 o_orderdate \
                 FROM lineitem JOIN orders ON l_orderkey = o_orderkey \
                 JOIN customer ON o_custkey = c_custkey \
                 WHERE c_mktsegment = 'BUILDING' AND o_orderdate < DATE '1995-03-15' \
                 AND l_shipdate > DATE '1995-03-15' \
                 GROUP BY l_orderkey, o_orderdate \
                 ORDER BY revenue DESC LIMIT 10"
            .to_owned()),
        // Q4: order priority checking (simplified: join instead of EXISTS).
        ("q04", "SELECT o_orderpriority, COUNT(*) AS order_count \
                 FROM orders JOIN lineitem ON o_orderkey = l_orderkey \
                 WHERE o_orderdate >= DATE '1993-07-01' AND o_orderdate < DATE '1993-10-01' \
                 GROUP BY o_orderpriority ORDER BY o_orderpriority"
            .to_owned()),
        // Q5: local supplier volume — the long join chain.
        ("q05", "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue \
                 FROM lineitem JOIN orders ON l_orderkey = o_orderkey \
                 JOIN customer ON o_custkey = c_custkey \
                 JOIN supplier ON l_suppkey = s_suppkey \
                 JOIN nation ON s_nationkey = n_nationkey \
                 JOIN region ON n_regionkey = r_regionkey \
                 WHERE r_name = 'ASIA' AND o_orderdate >= DATE '1994-01-01' \
                 AND o_orderdate < DATE '1995-01-01' \
                 GROUP BY n_name ORDER BY revenue DESC"
            .to_owned()),
        // Q6: forecasting revenue change — pure scan.
        ("q06", "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem \
                 WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' \
                 AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24"
            .to_owned()),
        // Q7: volume shipping between two nations (simplified pairing).
        ("q07", "SELECT n_name, l_linestatus, SUM(l_extendedprice * (1 - l_discount)) AS volume \
                 FROM lineitem JOIN supplier ON l_suppkey = s_suppkey \
                 JOIN nation ON s_nationkey = n_nationkey \
                 WHERE n_name = 'FRANCE' OR n_name = 'GERMANY' \
                 GROUP BY n_name, l_linestatus ORDER BY n_name, l_linestatus"
            .to_owned()),
        // Q8: national market share (simplified numerator only).
        ("q08", "SELECT o_orderdate, SUM(l_extendedprice * (1 - l_discount)) AS volume \
                 FROM lineitem JOIN orders ON l_orderkey = o_orderkey \
                 JOIN part ON l_partkey = p_partkey \
                 WHERE p_type = 'ECONOMY' AND o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31' \
                 GROUP BY o_orderdate ORDER BY volume DESC LIMIT 20"
            .to_owned()),
        // Q9: product type profit measure.
        ("q09", "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS profit \
                 FROM lineitem JOIN supplier ON l_suppkey = s_suppkey \
                 JOIN part ON l_partkey = p_partkey \
                 JOIN nation ON s_nationkey = n_nationkey \
                 WHERE p_name LIKE '%PROMO%' \
                 GROUP BY n_name ORDER BY profit DESC"
            .to_owned()),
        // Q10: returned item reporting.
        ("q10", "SELECT c_custkey, c_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue \
                 FROM lineitem JOIN orders ON l_orderkey = o_orderkey \
                 JOIN customer ON o_custkey = c_custkey \
                 WHERE l_returnflag = 'R' AND o_orderdate >= DATE '1993-10-01' \
                 GROUP BY c_custkey, c_name ORDER BY revenue DESC LIMIT 20"
            .to_owned()),
        // Q11: important stock identification (supplier balances stand in
        // for partsupp value).
        ("q11", "SELECT s_nationkey, SUM(s_acctbal) AS value FROM supplier \
                 GROUP BY s_nationkey ORDER BY value DESC"
            .to_owned()),
        // Q12: shipping modes and order priority.
        ("q12", "SELECT l_shipmode, COUNT(*) AS line_count, SUM(o_totalprice) AS total \
                 FROM lineitem JOIN orders ON l_orderkey = o_orderkey \
                 WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' \
                 AND (l_shipmode = 'MAIL' OR l_shipmode = 'SHIP') \
                 GROUP BY l_shipmode ORDER BY l_shipmode"
            .to_owned()),
        // Q13: customer distribution (simplified: orders per customer).
        ("q13", "SELECT c_custkey, COUNT(*) AS c_count \
                 FROM customer JOIN orders ON c_custkey = o_custkey \
                 GROUP BY c_custkey ORDER BY c_count DESC LIMIT 25"
            .to_owned()),
        // Q14: promotion effect (simplified: promo revenue only).
        ("q14", "SELECT SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue, COUNT(*) AS n \
                 FROM lineitem JOIN part ON l_partkey = p_partkey \
                 WHERE p_type = 'PROMO' AND l_shipdate >= DATE '1995-09-01' \
                 AND l_shipdate < DATE '1995-10-01'"
            .to_owned()),
        // Q15: top supplier by revenue.
        ("q15", "SELECT l_suppkey, SUM(l_extendedprice * (1 - l_discount)) AS total_revenue \
                 FROM lineitem WHERE l_shipdate >= DATE '1996-01-01' \
                 AND l_shipdate < DATE '1996-04-01' \
                 GROUP BY l_suppkey ORDER BY total_revenue DESC LIMIT 1"
            .to_owned()),
        // Q16: parts/supplier relationship counts.
        ("q16", "SELECT p_brand, p_type, COUNT(*) AS supplier_cnt \
                 FROM part JOIN lineitem ON p_partkey = l_partkey \
                 WHERE p_brand <> 'Brand#45' \
                 GROUP BY p_brand, p_type ORDER BY supplier_cnt DESC, p_brand LIMIT 20"
            .to_owned()),
        // Q17: small-quantity-order revenue.
        ("q17", "SELECT AVG(l_extendedprice) AS avg_yearly FROM lineitem \
                 JOIN part ON l_partkey = p_partkey \
                 WHERE p_brand = 'Brand#23' AND l_quantity < 5"
            .to_owned()),
        // Q18: large-volume customers.
        ("q18", "SELECT c_name, o_orderkey, SUM(l_quantity) AS total_qty \
                 FROM lineitem JOIN orders ON l_orderkey = o_orderkey \
                 JOIN customer ON o_custkey = c_custkey \
                 GROUP BY c_name, o_orderkey ORDER BY total_qty DESC LIMIT 100"
            .to_owned()),
        // Q19: discounted revenue with disjunctive predicates.
        ("q19", "SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue \
                 FROM lineitem JOIN part ON l_partkey = p_partkey \
                 WHERE (p_brand = 'Brand#12' AND l_quantity BETWEEN 1 AND 11) \
                 OR (p_brand = 'Brand#23' AND l_quantity BETWEEN 10 AND 20) \
                 OR (p_brand = 'Brand#34' AND l_quantity BETWEEN 20 AND 30)"
            .to_owned()),
        // Q20: potential part promotion (simplified).
        ("q20", "SELECT s_name, COUNT(*) AS shipped FROM supplier \
                 JOIN lineitem ON s_suppkey = l_suppkey \
                 WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' \
                 GROUP BY s_name ORDER BY shipped DESC LIMIT 10"
            .to_owned()),
        // Q21: suppliers who kept orders waiting (simplified to return
        // flag involvement).
        ("q21", "SELECT s_name, COUNT(*) AS numwait FROM supplier \
                 JOIN lineitem ON s_suppkey = l_suppkey \
                 JOIN orders ON l_orderkey = o_orderkey \
                 WHERE l_returnflag = 'R' AND l_linestatus = 'F' \
                 GROUP BY s_name ORDER BY numwait DESC, s_name LIMIT 100"
            .to_owned()),
        // Q22: global sales opportunity.
        ("q22", "SELECT c_nationkey, COUNT(*) AS numcust, SUM(c_acctbal) AS totacctbal \
                 FROM customer WHERE c_acctbal > 0.0 \
                 GROUP BY c_nationkey ORDER BY c_nationkey"
            .to_owned()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_22_queries() {
        let qs = all();
        assert_eq!(qs.len(), 22);
        let mut names: Vec<&str> = qs.iter().map(|(n, _)| *n).collect();
        names.dedup();
        assert_eq!(names.len(), 22, "names must be unique");
    }

    #[test]
    fn all_queries_parse_and_plan() {
        for (name, sql) in all() {
            let stmt =
                polaris_sql::parse(&sql).unwrap_or_else(|e| panic!("{name} failed to parse: {e}"));
            let polaris_sql::Statement::Select(sel) = stmt else {
                panic!("{name} is not a SELECT");
            };
            polaris_sql::plan_select(&sel).unwrap_or_else(|e| panic!("{name} failed to plan: {e}"));
        }
    }

    #[test]
    fn queries_reference_known_tables_only() {
        let known = crate::tpch::TABLES;
        for (name, sql) in all() {
            let polaris_sql::Statement::Select(sel) = polaris_sql::parse(&sql).unwrap() else {
                unreachable!()
            };
            assert!(
                known.contains(&sel.from.name.as_str()),
                "{name}: {}",
                sel.from.name
            );
            for j in &sel.joins {
                assert!(
                    known.contains(&j.table.name.as_str()),
                    "{name}: {}",
                    j.table.name
                );
            }
        }
    }
}
