//! # polaris-sql
//!
//! The T-SQL-flavoured front-end surface of the reproduction: tokenizer,
//! recursive-descent parser, and a single-phase planner that lowers
//! statements onto [`polaris_exec`] expressions and plans.
//!
//! The paper consolidates all query compilation in the SQL FE (§3.3) —
//! "eliminating the need for a local compilation stage within BE compute
//! nodes". This crate is that compilation stage: the engine parses and
//! plans once, then ships fully resolved plans to BE tasks.
//!
//! Supported dialect (enough for the examples and the TPC-H/LST-Bench-
//! shaped workloads):
//!
//! ```sql
//! CREATE TABLE t (id BIGINT, name VARCHAR NULL, price FLOAT, day DATE);
//! DROP TABLE t;
//! INSERT INTO t VALUES (1, 'a', 2.5, DATE '2024-01-31'), (2, NULL, 0.0, 0);
//! SELECT region, SUM(amount) AS total FROM sales
//!   WHERE day >= DATE '2024-01-01' AND region <> 'x'
//!   GROUP BY region ORDER BY total DESC LIMIT 10;
//! SELECT * FROM t AS OF 17;                 -- time travel to sequence 17
//! SELECT a.x, b.y FROM a JOIN b ON a.k = b.k;
//! UPDATE t SET price = price * 1.1 WHERE id = 2;
//! DELETE FROM t WHERE id < 100;
//! BEGIN; COMMIT; ROLLBACK;
//! ```

mod ast;
mod date;
mod parser;
mod plan;
mod token;

pub use ast::{
    ColumnDef, JoinClause, OrderItem, SelectItem, SelectStmt, SqlExpr, Statement, TableRef,
};
pub use date::{date_to_days, days_to_date};
pub use parser::{parse, parse_many, ParseError};
pub use plan::{lower_expr, plan_select, AggPlan, JoinPlan, PlanError, SelectPlan};
