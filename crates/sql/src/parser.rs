//! Recursive-descent parser.

use crate::ast::*;
use crate::date::parse_date_literal;
use crate::token::{tokenize, Sym, Token};
use polaris_columnar::{DataType, Value};
use polaris_exec::{AggFunc, BinOp};
use std::fmt;

/// A syntax error with a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    msg: String,
}

impl ParseError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        ParseError { msg: msg.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "syntax error: {}", self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a single statement (a trailing `;` is allowed).
pub fn parse(sql: &str) -> Result<Statement, ParseError> {
    let mut stmts = parse_many(sql)?;
    match stmts.len() {
        1 => Ok(stmts.remove(0)),
        0 => Err(ParseError::new("empty input")),
        n => Err(ParseError::new(format!(
            "expected one statement, found {n}"
        ))),
    }
}

/// Parse a `;`-separated batch of statements.
pub fn parse_many(sql: &str) -> Result<Vec<Statement>, ParseError> {
    // Attribute parser allocations (token/AST vectors) to the parse/plan
    // phase for the engine's resource-attribution profiles.
    let _alloc = polaris_obs::AllocScope::enter(polaris_obs::AllocPhase::ParsePlan);
    let tokens = tokenize(sql)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    loop {
        while parser.eat_symbol(Sym::Semicolon) {}
        if parser.at_end() {
            break;
        }
        out.push(parser.statement()?);
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token, ParseError> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| ParseError::new("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    /// Is the next token the keyword `kw` (case-insensitive)?
    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Word(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(ParseError::new(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_symbol(&mut self, sym: Sym) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: Sym) -> Result<(), ParseError> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(ParseError::new(format!(
                "expected {sym:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn identifier(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Token::Word(w) if !is_reserved(&w) => Ok(w.to_ascii_lowercase()),
            other => Err(ParseError::new(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        if self.eat_keyword("EXPLAIN") {
            self.expect_keyword("ANALYZE")?;
            let inner = self.statement()?;
            return Ok(Statement::ExplainAnalyze(Box::new(inner)));
        }
        if self.eat_keyword("SELECT") {
            return self.select().map(Statement::Select);
        }
        if self.eat_keyword("INSERT") {
            return self.insert();
        }
        if self.eat_keyword("UPDATE") {
            return self.update();
        }
        if self.eat_keyword("DELETE") {
            return self.delete();
        }
        if self.eat_keyword("CREATE") {
            self.expect_keyword("TABLE")?;
            return self.create_table();
        }
        if self.eat_keyword("DROP") {
            self.expect_keyword("TABLE")?;
            let name = self.identifier()?;
            return Ok(Statement::DropTable { name });
        }
        if self.eat_keyword("SHOW") {
            if self.eat_keyword("TABLES") {
                return Ok(Statement::ShowTables { system_only: false });
            }
            if self.eat_keyword("SYSTEM") {
                self.expect_keyword("TABLES")?;
                return Ok(Statement::ShowTables { system_only: true });
            }
            self.expect_keyword("ENGINE")?;
            self.expect_keyword("HEALTH")?;
            return Ok(Statement::ShowEngineHealth);
        }
        if self.eat_keyword("BEGIN") {
            let _ = self.eat_keyword("TRAN") || self.eat_keyword("TRANSACTION");
            return Ok(Statement::Begin);
        }
        if self.eat_keyword("COMMIT") {
            let _ = self.eat_keyword("TRAN") || self.eat_keyword("TRANSACTION");
            return Ok(Statement::Commit);
        }
        if self.eat_keyword("ROLLBACK") {
            let _ = self.eat_keyword("TRAN") || self.eat_keyword("TRANSACTION");
            return Ok(Statement::Rollback);
        }
        Err(ParseError::new(format!(
            "unsupported statement start {:?}",
            self.peek()
        )))
    }

    fn select(&mut self) -> Result<SelectStmt, ParseError> {
        let mut items = Vec::new();
        loop {
            if self.eat_symbol(Sym::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_keyword("AS") {
                    Some(self.identifier()?)
                } else {
                    match self.peek() {
                        Some(Token::Word(w))
                            if !is_reserved(w) && !w.eq_ignore_ascii_case("FROM") =>
                        {
                            Some(self.identifier()?)
                        }
                        _ => None,
                    }
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        self.expect_keyword("FROM")?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        while self.eat_keyword("JOIN") || {
            if self.peek_keyword("INNER") {
                self.pos += 1;
                self.expect_keyword("JOIN")?;
                true
            } else {
                false
            }
        } {
            let table = self.table_ref()?;
            self.expect_keyword("ON")?;
            let on = self.expr()?;
            joins.push(JoinClause { table, on });
        }
        let predicate = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let column = self.identifier()?;
                let desc = if self.eat_keyword("DESC") {
                    true
                } else {
                    let _ = self.eat_keyword("ASC");
                    false
                };
                order_by.push(OrderItem { column, desc });
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("LIMIT") || {
            if self.peek_keyword("TOP") {
                self.pos += 1;
                true
            } else {
                false
            }
        } {
            match self.next()? {
                Token::Int(n) if n >= 0 => Some(n as usize),
                other => return Err(ParseError::new(format!("bad LIMIT {other:?}"))),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            items,
            from,
            joins,
            predicate,
            group_by,
            order_by,
            limit,
        })
    }

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        let mut name = self.identifier()?;
        // `schema.table` — today the only schema is the virtual `polaris`
        // one, but the grammar accepts any qualifier and lets the planner
        // decide what resolves.
        let mut schema = None;
        if self.eat_symbol(Sym::Dot) {
            schema = Some(name);
            name = self.identifier()?;
        }
        // `AS OF <seq>` — time travel. Note `AS` here is followed by OF,
        // otherwise it introduces an alias.
        let mut as_of = None;
        let mut alias = None;
        if self.eat_keyword("AS") {
            if self.eat_keyword("OF") {
                match self.next()? {
                    Token::Int(seq) if seq >= 0 => as_of = Some(seq as u64),
                    other => return Err(ParseError::new(format!("bad AS OF sequence {other:?}"))),
                }
            } else {
                alias = Some(self.identifier()?);
            }
        } else if matches!(self.peek(), Some(Token::Word(w)) if !is_reserved(w)) {
            alias = Some(self.identifier()?);
        }
        Ok(TableRef {
            schema,
            name,
            as_of,
            alias,
        })
    }

    fn insert(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("INTO")?;
        let table = self.identifier()?;
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol(Sym::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.literal_value()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
            self.expect_symbol(Sym::RParen)?;
            rows.push(row);
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn update(&mut self) -> Result<Statement, ParseError> {
        let table = self.identifier()?;
        self.expect_keyword("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.identifier()?;
            self.expect_symbol(Sym::Eq)?;
            assignments.push((col, self.expr()?));
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        let predicate = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            predicate,
        })
    }

    fn delete(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("FROM")?;
        let table = self.identifier()?;
        let predicate = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, predicate })
    }

    fn create_table(&mut self) -> Result<Statement, ParseError> {
        let name = self.identifier()?;
        self.expect_symbol(Sym::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.identifier()?;
            let data_type = self.data_type()?;
            let nullable = if self.eat_keyword("NULL") {
                true
            } else if self.eat_keyword("NOT") {
                self.expect_keyword("NULL")?;
                false
            } else {
                false
            };
            columns.push(ColumnDef {
                name: col,
                data_type,
                nullable,
            });
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        self.expect_symbol(Sym::RParen)?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn data_type(&mut self) -> Result<DataType, ParseError> {
        let word = match self.next()? {
            Token::Word(w) => w.to_ascii_uppercase(),
            other => return Err(ParseError::new(format!("expected type, found {other:?}"))),
        };
        let dt = match word.as_str() {
            "BIGINT" | "INT" | "INTEGER" | "SMALLINT" => DataType::Int64,
            "FLOAT" | "DOUBLE" | "REAL" | "DECIMAL" | "NUMERIC" => DataType::Float64,
            "VARCHAR" | "TEXT" | "CHAR" | "NVARCHAR" | "STRING" => {
                // Optional (n) length, ignored.
                if self.eat_symbol(Sym::LParen) {
                    let _ = self.next()?;
                    self.expect_symbol(Sym::RParen)?;
                }
                DataType::Utf8
            }
            "BOOL" | "BOOLEAN" | "BIT" => DataType::Bool,
            "DATE" => DataType::Date32,
            other => return Err(ParseError::new(format!("unknown type {other}"))),
        };
        // Optional precision, e.g. DECIMAL(12,2), ignored.
        if dt == DataType::Float64 && self.eat_symbol(Sym::LParen) {
            while !self.eat_symbol(Sym::RParen) {
                let _ = self.next()?;
            }
        }
        Ok(dt)
    }

    fn literal_value(&mut self) -> Result<Value, ParseError> {
        match self.next()? {
            Token::Int(v) => Ok(Value::Int(v)),
            Token::Float(v) => Ok(Value::Float(v)),
            Token::Str(s) => Ok(Value::Str(s)),
            Token::Symbol(Sym::Minus) => match self.next()? {
                Token::Int(v) => Ok(Value::Int(-v)),
                Token::Float(v) => Ok(Value::Float(-v)),
                other => Err(ParseError::new(format!("bad negative literal {other:?}"))),
            },
            Token::Word(w) if w.eq_ignore_ascii_case("NULL") => Ok(Value::Null),
            Token::Word(w) if w.eq_ignore_ascii_case("TRUE") => Ok(Value::Bool(true)),
            Token::Word(w) if w.eq_ignore_ascii_case("FALSE") => Ok(Value::Bool(false)),
            Token::Word(w) if w.eq_ignore_ascii_case("DATE") => match self.next()? {
                Token::Str(s) => parse_date_literal(&s)
                    .map(Value::Date)
                    .ok_or_else(|| ParseError::new(format!("bad date literal '{s}'"))),
                other => Err(ParseError::new(format!("bad DATE literal {other:?}"))),
            },
            other => Err(ParseError::new(format!(
                "expected literal, found {other:?}"
            ))),
        }
    }

    // Expression grammar, lowest to highest precedence:
    //   OR -> AND -> NOT -> comparison/IS/LIKE/BETWEEN -> add -> mul -> atom
    fn expr(&mut self) -> Result<SqlExpr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<SqlExpr, ParseError> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = SqlExpr::Binary {
                left: Box::new(left),
                op: BinOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<SqlExpr, ParseError> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND") {
            let right = self.not_expr()?;
            left = SqlExpr::Binary {
                left: Box::new(left),
                op: BinOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<SqlExpr, ParseError> {
        if self.eat_keyword("NOT") {
            return Ok(SqlExpr::Not(Box::new(self.not_expr()?)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<SqlExpr, ParseError> {
        let left = self.additive()?;
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(SqlExpr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        if self.eat_keyword("LIKE") {
            match self.next()? {
                Token::Str(pattern) => {
                    return Ok(SqlExpr::Like {
                        expr: Box::new(left),
                        pattern,
                    })
                }
                other => return Err(ParseError::new(format!("bad LIKE pattern {other:?}"))),
            }
        }
        if self.eat_keyword("BETWEEN") {
            let lo = self.additive()?;
            self.expect_keyword("AND")?;
            let hi = self.additive()?;
            return Ok(SqlExpr::Between {
                expr: Box::new(left),
                lo: Box::new(lo),
                hi: Box::new(hi),
            });
        }
        let op = match self.peek() {
            Some(Token::Symbol(Sym::Eq)) => Some(BinOp::Eq),
            Some(Token::Symbol(Sym::NotEq)) => Some(BinOp::NotEq),
            Some(Token::Symbol(Sym::Lt)) => Some(BinOp::Lt),
            Some(Token::Symbol(Sym::LtEq)) => Some(BinOp::LtEq),
            Some(Token::Symbol(Sym::Gt)) => Some(BinOp::Gt),
            Some(Token::Symbol(Sym::GtEq)) => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(SqlExpr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            });
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<SqlExpr, ParseError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Sym::Plus)) => BinOp::Add,
                Some(Token::Symbol(Sym::Minus)) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = SqlExpr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<SqlExpr, ParseError> {
        let mut left = self.atom()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Sym::Star)) => BinOp::Mul,
                Some(Token::Symbol(Sym::Slash)) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.atom()?;
            left = SqlExpr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn atom(&mut self) -> Result<SqlExpr, ParseError> {
        match self.next()? {
            Token::Int(v) => Ok(SqlExpr::Literal(Value::Int(v))),
            Token::Float(v) => Ok(SqlExpr::Literal(Value::Float(v))),
            Token::Str(s) => Ok(SqlExpr::Literal(Value::Str(s))),
            Token::Symbol(Sym::Minus) => {
                // Unary minus over an atom.
                let inner = self.atom()?;
                Ok(SqlExpr::Binary {
                    left: Box::new(SqlExpr::Literal(Value::Int(0))),
                    op: BinOp::Sub,
                    right: Box::new(inner),
                })
            }
            Token::Symbol(Sym::LParen) => {
                let inner = self.expr()?;
                self.expect_symbol(Sym::RParen)?;
                Ok(inner)
            }
            Token::Word(w) => self.word_atom(w),
            other => Err(ParseError::new(format!("unexpected token {other:?}"))),
        }
    }

    fn word_atom(&mut self, word: String) -> Result<SqlExpr, ParseError> {
        if word.eq_ignore_ascii_case("NULL") {
            return Ok(SqlExpr::Literal(Value::Null));
        }
        if word.eq_ignore_ascii_case("TRUE") {
            return Ok(SqlExpr::Literal(Value::Bool(true)));
        }
        if word.eq_ignore_ascii_case("FALSE") {
            return Ok(SqlExpr::Literal(Value::Bool(false)));
        }
        if word.eq_ignore_ascii_case("DATE") {
            if let Some(Token::Str(_)) = self.peek() {
                let Token::Str(s) = self.next()? else {
                    unreachable!()
                };
                return parse_date_literal(&s)
                    .map(|d| SqlExpr::Literal(Value::Date(d)))
                    .ok_or_else(|| ParseError::new(format!("bad date literal '{s}'")));
            }
        }
        let agg = match word.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            "AVG" => Some(AggFunc::Avg),
            _ => None,
        };
        if let Some(func) = agg {
            if self.eat_symbol(Sym::LParen) {
                let arg = if self.eat_symbol(Sym::Star) {
                    None
                } else {
                    Some(Box::new(self.expr()?))
                };
                self.expect_symbol(Sym::RParen)?;
                return Ok(SqlExpr::Agg { func, arg });
            }
        }
        if is_reserved(&word) {
            return Err(ParseError::new(format!("unexpected keyword {word}")));
        }
        // Possibly qualified column.
        if self.eat_symbol(Sym::Dot) {
            let col = self.identifier()?;
            return Ok(SqlExpr::Column {
                qualifier: Some(word.to_ascii_lowercase()),
                name: col,
            });
        }
        Ok(SqlExpr::Column {
            qualifier: None,
            name: word.to_ascii_lowercase(),
        })
    }
}

fn is_reserved(word: &str) -> bool {
    const RESERVED: &[&str] = &[
        "SELECT",
        "FROM",
        "WHERE",
        "GROUP",
        "BY",
        "ORDER",
        "LIMIT",
        "TOP",
        "JOIN",
        "INNER",
        "ON",
        "AS",
        "AND",
        "OR",
        "NOT",
        "INSERT",
        "INTO",
        "VALUES",
        "UPDATE",
        "SET",
        "DELETE",
        "CREATE",
        "DROP",
        "TABLE",
        "BEGIN",
        "COMMIT",
        "ROLLBACK",
        "TRAN",
        "TRANSACTION",
        "IS",
        "LIKE",
        "BETWEEN",
        "DESC",
        "ASC",
        "OF",
    ];
    RESERVED.iter().any(|k| word.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_select() {
        let stmt = parse("SELECT a, b FROM t WHERE a > 5 ORDER BY b DESC LIMIT 3").unwrap();
        let Statement::Select(s) = stmt else {
            panic!("not a select")
        };
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.from.name, "t");
        assert!(s.predicate.is_some());
        assert_eq!(
            s.order_by,
            vec![OrderItem {
                column: "b".into(),
                desc: true
            }]
        );
        assert_eq!(s.limit, Some(3));
    }

    #[test]
    fn parses_aggregates_and_group_by() {
        let stmt =
            parse("SELECT region, SUM(amount) AS total, COUNT(*) n FROM sales GROUP BY region")
                .unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.group_by.len(), 1);
        let SelectItem::Expr {
            expr: SqlExpr::Agg { func, arg },
            alias,
        } = &s.items[1]
        else {
            panic!("expected aggregate");
        };
        assert_eq!(*func, AggFunc::Sum);
        assert!(arg.is_some());
        assert_eq!(alias.as_deref(), Some("total"));
        let SelectItem::Expr {
            expr: SqlExpr::Agg { arg, .. },
            alias,
        } = &s.items[2]
        else {
            panic!();
        };
        assert!(arg.is_none()); // COUNT(*)
        assert_eq!(alias.as_deref(), Some("n"));
    }

    #[test]
    fn parses_joins_with_qualified_columns() {
        let stmt =
            parse("SELECT o.total, c.name FROM orders o JOIN customer c ON o.custkey = c.custkey")
                .unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.from.alias.as_deref(), Some("o"));
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.joins[0].table.name, "customer");
    }

    #[test]
    fn parses_time_travel() {
        let stmt = parse("SELECT * FROM t AS OF 42").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.from.as_of, Some(42));
        assert_eq!(s.items, vec![SelectItem::Wildcard]);
        // AS alias still works
        let stmt = parse("SELECT * FROM t AS x").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.from.alias.as_deref(), Some("x"));
        assert_eq!(s.from.as_of, None);
    }

    #[test]
    fn parses_insert_with_literals() {
        let stmt = parse(
            "INSERT INTO t VALUES (1, 'a', 2.5, NULL, TRUE, DATE '1970-01-02'), (-3, 'b', -0.5, NULL, FALSE, 0)",
        )
        .unwrap();
        let Statement::Insert { table, rows } = stmt else {
            panic!()
        };
        assert_eq!(table, "t");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], Value::Int(1));
        assert_eq!(rows[0][5], Value::Date(1));
        assert_eq!(rows[1][0], Value::Int(-3));
        assert_eq!(rows[1][2], Value::Float(-0.5));
    }

    #[test]
    fn parses_update_and_delete() {
        let stmt = parse("UPDATE t SET price = price * 1.1, tag = 'sale' WHERE id = 2").unwrap();
        let Statement::Update {
            table,
            assignments,
            predicate,
        } = stmt
        else {
            panic!()
        };
        assert_eq!(table, "t");
        assert_eq!(assignments.len(), 2);
        assert!(predicate.is_some());
        let stmt = parse("DELETE FROM t").unwrap();
        let Statement::Delete { predicate, .. } = stmt else {
            panic!()
        };
        assert!(predicate.is_none());
    }

    #[test]
    fn parses_create_table() {
        let stmt = parse(
            "CREATE TABLE t (id BIGINT, name VARCHAR(20) NULL, price DECIMAL(12,2), ok BIT, d DATE NOT NULL)",
        )
        .unwrap();
        let Statement::CreateTable { name, columns } = stmt else {
            panic!()
        };
        assert_eq!(name, "t");
        assert_eq!(columns.len(), 5);
        assert_eq!(columns[0].data_type, DataType::Int64);
        assert!(columns[1].nullable);
        assert_eq!(columns[1].data_type, DataType::Utf8);
        assert_eq!(columns[2].data_type, DataType::Float64);
        assert_eq!(columns[3].data_type, DataType::Bool);
        assert_eq!(columns[4].data_type, DataType::Date32);
        assert!(!columns[4].nullable);
    }

    #[test]
    fn parses_txn_control() {
        assert_eq!(parse("BEGIN TRAN").unwrap(), Statement::Begin);
        assert_eq!(parse("BEGIN TRANSACTION").unwrap(), Statement::Begin);
        assert_eq!(parse("COMMIT").unwrap(), Statement::Commit);
        assert_eq!(parse("ROLLBACK;").unwrap(), Statement::Rollback);
    }

    #[test]
    fn parses_show_engine_health() {
        assert_eq!(
            parse("SHOW ENGINE HEALTH").unwrap(),
            Statement::ShowEngineHealth
        );
        assert_eq!(
            parse("show engine health;").unwrap(),
            Statement::ShowEngineHealth
        );
        assert!(parse("SHOW ENGINE").is_err());
        // SHOW/ENGINE/HEALTH stay usable as identifiers.
        assert!(parse("SELECT health FROM engine").is_ok());
    }

    #[test]
    fn parses_show_tables() {
        assert_eq!(
            parse("SHOW TABLES").unwrap(),
            Statement::ShowTables { system_only: false }
        );
        assert_eq!(
            parse("show system tables;").unwrap(),
            Statement::ShowTables { system_only: true }
        );
        assert!(parse("SHOW SYSTEM").is_err());
        // TABLES/SYSTEM stay usable as identifiers.
        assert!(parse("SELECT tables FROM system").is_ok());
    }

    #[test]
    fn parses_qualified_table_refs() {
        let Statement::Select(s) = parse("SELECT * FROM polaris.metrics").unwrap() else {
            panic!()
        };
        assert_eq!(s.from.schema.as_deref(), Some("polaris"));
        assert_eq!(s.from.name, "metrics");
        // Aliases and joins still compose with a qualifier.
        let Statement::Select(s) = parse(
            "SELECT s.query_id FROM polaris.slow_log s \
             JOIN polaris.trace_spans t ON s.query_id = t.query_id",
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(s.from.alias.as_deref(), Some("s"));
        assert_eq!(s.joins[0].table.schema.as_deref(), Some("polaris"));
        assert_eq!(s.joins[0].table.name, "trace_spans");
        // Unqualified refs keep schema == None.
        let Statement::Select(s) = parse("SELECT * FROM t").unwrap() else {
            panic!()
        };
        assert_eq!(s.from.schema, None);
    }

    #[test]
    fn parses_batches() {
        let stmts = parse_many("BEGIN; INSERT INTO t VALUES (1); COMMIT;").unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn operator_precedence() {
        // a + b * c parses as a + (b * c)
        let Statement::Select(s) = parse("SELECT a + b * c FROM t").unwrap() else {
            panic!()
        };
        let SelectItem::Expr {
            expr: SqlExpr::Binary { op, right, .. },
            ..
        } = &s.items[0]
        else {
            panic!()
        };
        assert_eq!(*op, BinOp::Add);
        assert!(matches!(
            right.as_ref(),
            SqlExpr::Binary { op: BinOp::Mul, .. }
        ));
        // AND binds tighter than OR
        let Statement::Select(s) = parse("SELECT 1 FROM t WHERE a OR b AND c").unwrap() else {
            panic!()
        };
        assert!(matches!(
            s.predicate.unwrap(),
            SqlExpr::Binary { op: BinOp::Or, .. }
        ));
    }

    #[test]
    fn between_like_isnull() {
        let Statement::Select(s) =
            parse("SELECT 1 FROM t WHERE a BETWEEN 1 AND 5 AND b LIKE '%x%' AND c IS NOT NULL")
                .unwrap()
        else {
            panic!()
        };
        let pred = format!("{:?}", s.predicate.unwrap());
        assert!(pred.contains("Between") && pred.contains("Like") && pred.contains("IsNull"));
    }

    #[test]
    fn error_cases() {
        assert!(parse("").is_err());
        assert!(parse("SELECT").is_err());
        assert!(parse("SELECT * FROM").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("INSERT INTO t VALUES (1,)").is_err());
        assert!(parse("FROBNICATE").is_err());
        assert!(parse("SELECT * FROM t; SELECT * FROM u").is_err()); // parse() wants one
        assert!(parse("CREATE TABLE t (a WIBBLE)").is_err());
        assert!(parse("INSERT INTO t VALUES (DATE 'xx')").is_err());
    }
}
