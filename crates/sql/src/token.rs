//! SQL tokenizer.

use crate::parser::ParseError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Token {
    /// Keyword or identifier (keywords are matched case-insensitively by
    /// the parser; the original text is preserved).
    Word(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes stripped, `''` unescaped).
    Str(String),
    /// Operators and punctuation.
    Symbol(Sym),
}

/// Punctuation and operator symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Sym {
    LParen,
    RParen,
    Comma,
    Semicolon,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Dot,
}

/// Tokenize SQL text. Supports `-- line comments`.
pub(crate) fn tokenize(sql: &str) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let bytes = sql.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token::Symbol(Sym::LParen));
                i += 1;
            }
            ')' => {
                tokens.push(Token::Symbol(Sym::RParen));
                i += 1;
            }
            ',' => {
                tokens.push(Token::Symbol(Sym::Comma));
                i += 1;
            }
            ';' => {
                tokens.push(Token::Symbol(Sym::Semicolon));
                i += 1;
            }
            '*' => {
                tokens.push(Token::Symbol(Sym::Star));
                i += 1;
            }
            '+' => {
                tokens.push(Token::Symbol(Sym::Plus));
                i += 1;
            }
            '-' => {
                tokens.push(Token::Symbol(Sym::Minus));
                i += 1;
            }
            '/' => {
                tokens.push(Token::Symbol(Sym::Slash));
                i += 1;
            }
            '.' => {
                tokens.push(Token::Symbol(Sym::Dot));
                i += 1;
            }
            '=' => {
                tokens.push(Token::Symbol(Sym::Eq));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Symbol(Sym::LtEq));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token::Symbol(Sym::NotEq));
                    i += 2;
                } else {
                    tokens.push(Token::Symbol(Sym::Lt));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Symbol(Sym::GtEq));
                    i += 2;
                } else {
                    tokens.push(Token::Symbol(Sym::Gt));
                    i += 1;
                }
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token::Symbol(Sym::NotEq));
                i += 2;
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(ParseError::new("unterminated string literal")),
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            '0'..='9' => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len() {
                    match bytes[i] as char {
                        '0'..='9' => i += 1,
                        '.' if !is_float
                            && bytes
                                .get(i + 1)
                                .is_some_and(|b| (*b as char).is_ascii_digit()) =>
                        {
                            is_float = true;
                            i += 1;
                        }
                        _ => break,
                    }
                }
                let text = &sql[start..i];
                if is_float {
                    let v = text
                        .parse()
                        .map_err(|_| ParseError::new(format!("bad float literal {text}")))?;
                    tokens.push(Token::Float(v));
                } else {
                    let v = text
                        .parse()
                        .map_err(|_| ParseError::new(format!("bad int literal {text}")))?;
                    tokens.push(Token::Int(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Word(sql[start..i].to_owned()));
            }
            other => {
                return Err(ParseError::new(format!("unexpected character {other:?}")));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_query() {
        let toks = tokenize("SELECT a, SUM(b) FROM t WHERE c >= 1.5 AND d <> 'x''y'").unwrap();
        assert_eq!(toks[0], Token::Word("SELECT".into()));
        assert!(toks.contains(&Token::Symbol(Sym::GtEq)));
        assert!(toks.contains(&Token::Float(1.5)));
        assert!(toks.contains(&Token::Str("x'y".into())));
        assert!(toks.contains(&Token::Symbol(Sym::NotEq)));
    }

    #[test]
    fn comments_and_whitespace_skipped() {
        let toks = tokenize("SELECT 1 -- trailing comment\n , 2").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("SELECT".into()),
                Token::Int(1),
                Token::Symbol(Sym::Comma),
                Token::Int(2),
            ]
        );
    }

    #[test]
    fn numbers_and_dots() {
        // "1.5" is a float; "a.b" is ident dot ident.
        let toks = tokenize("1.5 a.b 42").unwrap();
        assert_eq!(toks[0], Token::Float(1.5));
        assert_eq!(toks[1], Token::Word("a".into()));
        assert_eq!(toks[2], Token::Symbol(Sym::Dot));
        assert_eq!(toks[3], Token::Word("b".into()));
        assert_eq!(toks[4], Token::Int(42));
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("SELECT ?").is_err());
        assert!(tokenize("99999999999999999999999").is_err());
    }

    #[test]
    fn bang_eq_is_not_eq() {
        let toks = tokenize("a != b").unwrap();
        assert_eq!(toks[1], Token::Symbol(Sym::NotEq));
    }
}
