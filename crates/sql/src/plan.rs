//! Single-phase planning: lower parsed statements onto executor plans.
//!
//! The SQL FE compiles once and ships resolved plans (§3.3); BE tasks never
//! re-plan. `SelectPlan` is the serialized form of that distributed plan:
//! scan + joins + predicate + (partial-aggregatable) aggregation +
//! presentation.

use crate::ast::{JoinClause, SelectItem, SelectStmt, SqlExpr};
use polaris_exec::{AggExpr, AggFunc, Expr};
use std::fmt;

/// A planning error (unsupported construct or inconsistent query).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    msg: String,
}

impl PlanError {
    fn new(msg: impl Into<String>) -> Self {
        PlanError { msg: msg.into() }
    }
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan error: {}", self.msg)
    }
}

impl std::error::Error for PlanError {}

/// One join step: hash-join the running result with `table`.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinPlan {
    /// Schema qualifier of the joined table (`polaris.*` = system table).
    pub schema: Option<String>,
    /// Table to join in.
    pub table: String,
    /// Time-travel sequence for the joined table.
    pub as_of: Option<u64>,
    /// Keys evaluated against the running (left) side.
    pub left_keys: Vec<Expr>,
    /// Keys evaluated against the joined (right) side.
    pub right_keys: Vec<Expr>,
}

/// Aggregation step.
#[derive(Debug, Clone, PartialEq)]
pub struct AggPlan {
    /// Group-by keys with output names.
    pub group_by: Vec<(Expr, String)>,
    /// Aggregates.
    pub aggs: Vec<AggExpr>,
}

/// A fully lowered SELECT.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectPlan {
    /// Schema qualifier of the base table. `Some("polaris")` routes the
    /// scan to the system-table providers instead of the catalog.
    pub schema: Option<String>,
    /// Base table.
    pub table: String,
    /// Time-travel sequence for the base table (§6.1).
    pub as_of: Option<u64>,
    /// Join steps, applied in order.
    pub joins: Vec<JoinPlan>,
    /// Row filter, pushed into the scan where possible.
    pub predicate: Option<Expr>,
    /// Aggregation, if the query groups or aggregates.
    pub agg: Option<AggPlan>,
    /// Final projection; `None` means "all scan columns" (`SELECT *`).
    pub projections: Option<Vec<(Expr, String)>>,
    /// Sort order over output column names.
    pub order_by: Vec<(String, bool)>,
    /// Row limit.
    pub limit: Option<usize>,
}

/// Lower a parsed SELECT into a [`SelectPlan`].
pub fn plan_select(stmt: &SelectStmt) -> Result<SelectPlan, PlanError> {
    let _alloc = polaris_obs::AllocScope::enter(polaris_obs::AllocPhase::ParsePlan);
    let joins = stmt
        .joins
        .iter()
        .map(lower_join)
        .collect::<Result<Vec<_>, _>>()?;
    let predicate = stmt.predicate.as_ref().map(lower_scalar).transpose()?;

    let has_agg_item = stmt.items.iter().any(|item| match item {
        SelectItem::Expr { expr, .. } => contains_agg(expr),
        SelectItem::Wildcard => false,
    });
    let is_aggregate = has_agg_item || !stmt.group_by.is_empty();

    let (agg, projections) = if is_aggregate {
        (Some(lower_aggregate(stmt)?), None)
    } else {
        (None, lower_projection(&stmt.items)?)
    };

    Ok(SelectPlan {
        schema: stmt.from.schema.clone(),
        table: stmt.from.name.clone(),
        as_of: stmt.from.as_of,
        joins,
        predicate,
        agg,
        projections,
        order_by: stmt
            .order_by
            .iter()
            .map(|o| (o.column.clone(), o.desc))
            .collect(),
        limit: stmt.limit,
    })
}

fn lower_projection(items: &[SelectItem]) -> Result<Option<Vec<(Expr, String)>>, PlanError> {
    if items.len() == 1 && items[0] == SelectItem::Wildcard {
        return Ok(None);
    }
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => return Err(PlanError::new("* must be the only select item")),
            SelectItem::Expr { expr, alias } => {
                let lowered = lower_scalar(expr)?;
                let name = alias.clone().unwrap_or_else(|| default_name(expr, i));
                out.push((lowered, name));
            }
        }
    }
    Ok(Some(out))
}

fn lower_aggregate(stmt: &SelectStmt) -> Result<AggPlan, PlanError> {
    let group_exprs: Vec<SqlExpr> = stmt.group_by.clone();
    let mut group_by = Vec::new();
    let mut aggs = Vec::new();
    // Walk select items in order: group keys keep their position, aggregates
    // append. Items must be either an aggregate call or one of the GROUP BY
    // expressions.
    for (i, item) in stmt.items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                return Err(PlanError::new("* not allowed in aggregate queries"))
            }
            SelectItem::Expr { expr, alias } => match expr {
                SqlExpr::Agg { func, arg } => {
                    let input = match arg {
                        Some(a) => {
                            if contains_agg(a) {
                                return Err(PlanError::new("nested aggregates"));
                            }
                            lower_scalar(a)?
                        }
                        // COUNT(*) counts rows: count a non-null literal.
                        None => Expr::lit(1i64),
                    };
                    let name = alias.clone().unwrap_or_else(|| default_name(expr, i));
                    aggs.push(AggExpr::new(*func, input, name));
                }
                other => {
                    if !group_exprs.contains(other) {
                        return Err(PlanError::new(format!(
                            "select item {other:?} is neither an aggregate nor in GROUP BY"
                        )));
                    }
                    let name = alias.clone().unwrap_or_else(|| default_name(other, i));
                    group_by.push((lower_scalar(other)?, name));
                }
            },
        }
    }
    // GROUP BY columns not projected still group (SQL allows it).
    for g in &group_exprs {
        let lowered = lower_scalar(g)?;
        if !group_by.iter().any(|(e, _)| e == &lowered) {
            group_by.push((lowered.clone(), format!("_group{}", group_by.len())));
        }
    }
    Ok(AggPlan { group_by, aggs })
}

fn lower_join(join: &JoinClause) -> Result<JoinPlan, PlanError> {
    let right_names: Vec<&str> = [Some(join.table.name.as_str()), join.table.alias.as_deref()]
        .into_iter()
        .flatten()
        .collect();
    let mut left_keys = Vec::new();
    let mut right_keys = Vec::new();
    collect_equi_keys(&join.on, &right_names, &mut left_keys, &mut right_keys)?;
    if left_keys.is_empty() {
        return Err(PlanError::new("join ON must contain at least one equality"));
    }
    Ok(JoinPlan {
        schema: join.table.schema.clone(),
        table: join.table.name.clone(),
        as_of: join.table.as_of,
        left_keys,
        right_keys,
    })
}

/// Decompose `ON` into equi-join keys. Accepts conjunctions of `x = y`.
fn collect_equi_keys(
    on: &SqlExpr,
    right_names: &[&str],
    left_keys: &mut Vec<Expr>,
    right_keys: &mut Vec<Expr>,
) -> Result<(), PlanError> {
    match on {
        SqlExpr::Binary {
            left,
            op: polaris_exec::BinOp::And,
            right,
        } => {
            collect_equi_keys(left, right_names, left_keys, right_keys)?;
            collect_equi_keys(right, right_names, left_keys, right_keys)
        }
        SqlExpr::Binary {
            left,
            op: polaris_exec::BinOp::Eq,
            right,
        } => {
            // Which operand belongs to the joined (right) table? Prefer
            // qualifier evidence; fall back to positional order.
            let l_right = references_table(left, right_names);
            let r_right = references_table(right, right_names);
            let (l, r) = match (l_right, r_right) {
                (true, false) => (right, left),
                _ => (left, right),
            };
            left_keys.push(lower_scalar(l)?);
            right_keys.push(lower_scalar(r)?);
            Ok(())
        }
        other => Err(PlanError::new(format!(
            "unsupported join condition {other:?}: need conjunctions of equalities"
        ))),
    }
}

fn references_table(expr: &SqlExpr, names: &[&str]) -> bool {
    match expr {
        SqlExpr::Column {
            qualifier: Some(q), ..
        } => names.contains(&q.as_str()),
        SqlExpr::Column {
            qualifier: None, ..
        }
        | SqlExpr::Literal(_)
        | SqlExpr::Agg { .. } => false,
        SqlExpr::Binary { left, right, .. } => {
            references_table(left, names) || references_table(right, names)
        }
        SqlExpr::Not(e) => references_table(e, names),
        SqlExpr::IsNull { expr, .. } => references_table(expr, names),
        SqlExpr::Like { expr, .. } => references_table(expr, names),
        SqlExpr::Between { expr, lo, hi } => {
            references_table(expr, names)
                || references_table(lo, names)
                || references_table(hi, names)
        }
    }
}

/// Lower a scalar (non-aggregate) expression to an executor expression —
/// public so the engine can lower UPDATE assignments and standalone
/// predicates.
pub fn lower_expr(expr: &SqlExpr) -> Result<Expr, PlanError> {
    lower_scalar(expr)
}

/// Lower a scalar (non-aggregate) expression.
pub(crate) fn lower_scalar(expr: &SqlExpr) -> Result<Expr, PlanError> {
    Ok(match expr {
        SqlExpr::Column { name, .. } => Expr::col(name.clone()),
        SqlExpr::Literal(v) => Expr::Literal(v.clone()),
        SqlExpr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(lower_scalar(left)?),
            op: *op,
            right: Box::new(lower_scalar(right)?),
        },
        SqlExpr::Not(e) => Expr::Not(Box::new(lower_scalar(e)?)),
        SqlExpr::IsNull { expr, negated } => {
            let is_null = Expr::IsNull(Box::new(lower_scalar(expr)?));
            if *negated {
                Expr::Not(Box::new(is_null))
            } else {
                is_null
            }
        }
        SqlExpr::Like { expr, pattern } => {
            let inner = lower_scalar(expr)?;
            let trimmed = pattern.trim_matches('%');
            if trimmed.contains('%') || trimmed.contains('_') {
                return Err(PlanError::new(format!(
                    "unsupported LIKE pattern {pattern:?}: only '%substring%' is supported"
                )));
            }
            if pattern.starts_with('%') && pattern.ends_with('%') && pattern.len() >= 2 {
                Expr::Contains {
                    expr: Box::new(inner),
                    needle: trimmed.to_owned(),
                }
            } else if !pattern.contains('%') {
                inner.eq(Expr::lit(pattern.as_str()))
            } else {
                return Err(PlanError::new(format!(
                    "unsupported LIKE pattern {pattern:?}: only '%substring%' is supported"
                )));
            }
        }
        SqlExpr::Between { expr, lo, hi } => {
            let e = lower_scalar(expr)?;
            let lo = lower_scalar(lo)?;
            let hi = lower_scalar(hi)?;
            e.clone().gt_eq(lo).and(e.lt_eq(hi))
        }
        SqlExpr::Agg { .. } => return Err(PlanError::new("aggregate used in scalar context")),
    })
}

fn contains_agg(expr: &SqlExpr) -> bool {
    match expr {
        SqlExpr::Agg { .. } => true,
        SqlExpr::Column { .. } | SqlExpr::Literal(_) => false,
        SqlExpr::Binary { left, right, .. } => contains_agg(left) || contains_agg(right),
        SqlExpr::Not(e) => contains_agg(e),
        SqlExpr::IsNull { expr, .. } => contains_agg(expr),
        SqlExpr::Like { expr, .. } => contains_agg(expr),
        SqlExpr::Between { expr, lo, hi } => {
            contains_agg(expr) || contains_agg(lo) || contains_agg(hi)
        }
    }
}

fn default_name(expr: &SqlExpr, index: usize) -> String {
    match expr {
        SqlExpr::Column { name, .. } => name.clone(),
        SqlExpr::Agg { func, arg } => {
            let base = match func {
                AggFunc::Count => "count",
                AggFunc::Sum => "sum",
                AggFunc::Min => "min",
                AggFunc::Max => "max",
                AggFunc::Avg => "avg",
            };
            match arg.as_deref() {
                Some(SqlExpr::Column { name, .. }) => format!("{base}_{name}"),
                _ => format!("{base}_{index}"),
            }
        }
        _ => format!("_col{index}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::Statement;

    fn plan(sql: &str) -> SelectPlan {
        let Statement::Select(s) = parse(sql).unwrap() else {
            panic!("not a select")
        };
        plan_select(&s).unwrap()
    }

    fn plan_err(sql: &str) -> PlanError {
        let Statement::Select(s) = parse(sql).unwrap() else {
            panic!("not a select")
        };
        plan_select(&s).unwrap_err()
    }

    #[test]
    fn wildcard_scan() {
        let p = plan("SELECT * FROM t WHERE a > 1");
        assert_eq!(p.table, "t");
        assert!(p.projections.is_none());
        assert!(p.agg.is_none());
        assert!(p.predicate.is_some());
    }

    #[test]
    fn projection_names() {
        let p = plan("SELECT a, b + 1 AS b1, c * 2 FROM t");
        let projs = p.projections.unwrap();
        assert_eq!(projs[0].1, "a");
        assert_eq!(projs[1].1, "b1");
        assert_eq!(projs[2].1, "_col2");
    }

    #[test]
    fn aggregate_plan_shapes() {
        let p = plan("SELECT region, SUM(x) AS sx, COUNT(*) FROM t GROUP BY region");
        let agg = p.agg.unwrap();
        assert_eq!(agg.group_by.len(), 1);
        assert_eq!(agg.group_by[0].1, "region");
        assert_eq!(agg.aggs.len(), 2);
        assert_eq!(agg.aggs[0].output, "sx");
        assert_eq!(agg.aggs[1].output, "count_2");
        // COUNT(*) counts a literal
        assert_eq!(agg.aggs[1].input, Expr::lit(1i64));
    }

    #[test]
    fn scalar_aggregate_without_group_by() {
        let p = plan("SELECT SUM(c2) FROM t1");
        let agg = p.agg.unwrap();
        assert!(agg.group_by.is_empty());
        assert_eq!(agg.aggs[0].output, "sum_c2");
    }

    #[test]
    fn non_grouped_item_rejected() {
        let e = plan_err("SELECT region, amount FROM t GROUP BY region");
        assert!(e.to_string().contains("neither an aggregate"));
    }

    #[test]
    fn join_key_orientation_by_qualifier() {
        let p = plan("SELECT o.total FROM orders o JOIN customer c ON c.ck = o.ck");
        // c.ck belongs to the joined table even though written first.
        assert_eq!(p.joins[0].left_keys, vec![Expr::col("ck")]);
        assert_eq!(p.joins[0].right_keys, vec![Expr::col("ck")]);
        let p = plan("SELECT 1 FROM a JOIN b ON a.x = b.y AND a.z = b.w");
        assert_eq!(p.joins[0].left_keys.len(), 2);
        assert_eq!(p.joins[0].right_keys, vec![Expr::col("y"), Expr::col("w")]);
    }

    #[test]
    fn non_equi_join_rejected() {
        let e = plan_err("SELECT 1 FROM a JOIN b ON a.x < b.y");
        assert!(e.to_string().contains("equalities"));
    }

    #[test]
    fn between_and_like_lowering() {
        let p = plan("SELECT * FROM t WHERE a BETWEEN 1 AND 5");
        let pred = p.predicate.unwrap();
        assert_eq!(
            pred,
            Expr::col("a")
                .clone()
                .gt_eq(Expr::lit(1i64))
                .and(Expr::col("a").lt_eq(Expr::lit(5i64)))
        );
        let p = plan("SELECT * FROM t WHERE s LIKE '%promo%'");
        assert!(matches!(p.predicate.unwrap(), Expr::Contains { .. }));
        // exact LIKE without wildcards is equality
        let p = plan("SELECT * FROM t WHERE s LIKE 'exact'");
        assert!(matches!(p.predicate.unwrap(), Expr::Binary { .. }));
        // unsupported pattern
        let e = plan_err("SELECT * FROM t WHERE s LIKE 'a%b'");
        assert!(e.to_string().contains("LIKE"));
    }

    #[test]
    fn is_not_null_lowering() {
        let p = plan("SELECT * FROM t WHERE a IS NOT NULL");
        assert!(matches!(p.predicate.unwrap(), Expr::Not(_)));
    }

    #[test]
    fn aggregate_in_where_rejected() {
        let e = plan_err("SELECT * FROM t WHERE SUM(a) > 1");
        assert!(e.to_string().contains("scalar context"));
    }

    #[test]
    fn time_travel_propagates() {
        let p = plan("SELECT * FROM t AS OF 9");
        assert_eq!(p.as_of, Some(9));
    }

    #[test]
    fn schema_qualifier_propagates() {
        let p = plan("SELECT * FROM polaris.metrics WHERE kind = 'counter'");
        assert_eq!(p.schema.as_deref(), Some("polaris"));
        assert_eq!(p.table, "metrics");
        let p = plan(
            "SELECT s.query_id FROM polaris.slow_log s \
             JOIN polaris.trace_spans t ON s.query_id = t.query_id",
        );
        assert_eq!(p.joins[0].schema.as_deref(), Some("polaris"));
        assert_eq!(p.joins[0].table, "trace_spans");
        let p = plan("SELECT * FROM t");
        assert_eq!(p.schema, None);
    }

    #[test]
    fn order_and_limit() {
        let p = plan("SELECT a FROM t ORDER BY a DESC, b LIMIT 7");
        assert_eq!(
            p.order_by,
            vec![("a".to_owned(), true), ("b".to_owned(), false)]
        );
        assert_eq!(p.limit, Some(7));
    }
}
