//! Abstract syntax of the supported dialect.

use polaris_columnar::{DataType, Value};

/// A parsed SQL expression (before planning).
///
/// Distinct from [`polaris_exec::Expr`] because the surface syntax has
/// constructs the execution engine does not (aggregate calls, `*`,
/// qualified names) that the planner lowers or rejects contextually.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// Possibly-qualified column reference (`a` or `t.a`; the qualifier is
    /// dropped at planning — output column names are globally unique in
    /// this engine).
    Column {
        /// Optional table qualifier.
        qualifier: Option<String>,
        /// Column name (lower-cased).
        name: String,
    },
    /// Literal.
    Literal(Value),
    /// Binary operation, using the executor's operator set.
    Binary {
        /// Left operand.
        left: Box<SqlExpr>,
        /// Operator.
        op: polaris_exec::BinOp,
        /// Right operand.
        right: Box<SqlExpr>,
    },
    /// `NOT expr`
    Not(Box<SqlExpr>),
    /// `expr IS NULL` / `expr IS NOT NULL` (negated)
    IsNull {
        /// Operand.
        expr: Box<SqlExpr>,
        /// Whether the test is negated.
        negated: bool,
    },
    /// `expr LIKE '%needle%'` (substring form only).
    Like {
        /// Operand.
        expr: Box<SqlExpr>,
        /// Pattern with `%` wildcards.
        pattern: String,
    },
    /// `expr BETWEEN lo AND hi`
    Between {
        /// Operand.
        expr: Box<SqlExpr>,
        /// Lower bound (inclusive).
        lo: Box<SqlExpr>,
        /// Upper bound (inclusive).
        hi: Box<SqlExpr>,
    },
    /// Aggregate call: `SUM(x)`, `COUNT(*)`, …
    Agg {
        /// Function.
        func: polaris_exec::AggFunc,
        /// Argument; `None` means `COUNT(*)`.
        arg: Option<Box<SqlExpr>>,
    },
}

/// One item of a SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `expr [AS alias]`
    Expr {
        /// The expression.
        expr: SqlExpr,
        /// Explicit alias, if any.
        alias: Option<String>,
    },
}

/// A table reference with optional time travel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Schema qualifier (`FROM polaris.metrics`), lower-cased. `None`
    /// means the default user schema.
    pub schema: Option<String>,
    /// Table name (lower-cased).
    pub name: String,
    /// `AS OF <sequence>` — a historical snapshot (§6.1).
    pub as_of: Option<u64>,
    /// Local alias (`FROM t x` or `FROM t AS x`).
    pub alias: Option<String>,
}

/// An inner equi-join clause.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// Joined table.
    pub table: TableRef,
    /// `ON` predicate (the planner requires a conjunction of equalities).
    pub on: SqlExpr,
}

/// An ORDER BY item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderItem {
    /// Output column name to sort by.
    pub column: String,
    /// Descending?
    pub desc: bool,
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// Base table.
    pub from: TableRef,
    /// Joins, applied left-to-right.
    pub joins: Vec<JoinClause>,
    /// WHERE clause.
    pub predicate: Option<SqlExpr>,
    /// GROUP BY expressions.
    pub group_by: Vec<SqlExpr>,
    /// ORDER BY items (over output column names).
    pub order_by: Vec<OrderItem>,
    /// LIMIT.
    pub limit: Option<usize>,
}

/// A column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (lower-cased).
    pub name: String,
    /// Data type.
    pub data_type: DataType,
    /// NULLs permitted?
    pub nullable: bool,
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// SELECT.
    Select(SelectStmt),
    /// INSERT INTO t VALUES (...), (...).
    Insert {
        /// Target table.
        table: String,
        /// Row literals.
        rows: Vec<Vec<Value>>,
    },
    /// UPDATE t SET c = e, ... [WHERE p].
    Update {
        /// Target table.
        table: String,
        /// Assignments.
        assignments: Vec<(String, SqlExpr)>,
        /// Optional predicate.
        predicate: Option<SqlExpr>,
    },
    /// DELETE FROM t [WHERE p].
    Delete {
        /// Target table.
        table: String,
        /// Optional predicate.
        predicate: Option<SqlExpr>,
    },
    /// CREATE TABLE.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
    },
    /// DROP TABLE.
    DropTable {
        /// Table name.
        name: String,
    },
    /// BEGIN [TRAN|TRANSACTION].
    Begin,
    /// COMMIT.
    Commit,
    /// ROLLBACK.
    Rollback,
    /// EXPLAIN ANALYZE <stmt>: execute the inner statement and render its
    /// trace span tree with per-phase timings and pruning statistics.
    ExplainAnalyze(Box<Statement>),
    /// SHOW ENGINE HEALTH: render the continuous-telemetry view — current
    /// health status, firing watchdogs, recent health events, top slow
    /// transactions/statements and per-shard commit-lock pressure.
    ShowEngineHealth,
    /// SHOW TABLES / SHOW SYSTEM TABLES: list user tables from the catalog
    /// and the virtual tables under `polaris.*`.
    ShowTables {
        /// `SHOW SYSTEM TABLES` — restrict the listing to `polaris.*`.
        system_only: bool,
    },
}
