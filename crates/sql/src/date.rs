//! Civil-date conversion for `DATE 'yyyy-mm-dd'` literals.
//!
//! Uses Howard Hinnant's days-from-civil algorithm; exact for the entire
//! proleptic Gregorian calendar.

/// Days since 1970-01-01 for a civil date.
pub fn date_to_days(year: i32, month: u32, day: u32) -> i32 {
    debug_assert!((1..=12).contains(&month));
    debug_assert!((1..=31).contains(&day));
    let y = if month <= 2 { year - 1 } else { year } as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = ((month as i64) + 9) % 12;
    let doy = (153 * mp + 2) / 5 + (day as i64) - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    (era * 146097 + doe - 719468) as i32
}

/// Inverse of [`date_to_days`].
pub fn days_to_date(days: i32) -> (i32, u32, u32) {
    let z = days as i64 + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097;
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    let y = if m <= 2 { y + 1 } else { y } as i32;
    (y, m, d)
}

/// Parse `yyyy-mm-dd` into days since epoch.
pub(crate) fn parse_date_literal(s: &str) -> Option<i32> {
    let mut parts = s.split('-');
    let year: i32 = parts.next()?.parse().ok()?;
    let month: u32 = parts.next()?.parse().ok()?;
    let day: u32 = parts.next()?.parse().ok()?;
    if parts.next().is_some() || !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return None;
    }
    Some(date_to_days(year, month, day))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_anchors() {
        assert_eq!(date_to_days(1970, 1, 1), 0);
        assert_eq!(date_to_days(1970, 1, 2), 1);
        assert_eq!(date_to_days(1969, 12, 31), -1);
        assert_eq!(date_to_days(2000, 3, 1), 11017);
        assert_eq!(date_to_days(2024, 1, 31), 19753);
    }

    #[test]
    fn leap_years() {
        // 2000 was a leap year (div 400), 1900 was not (div 100).
        assert_eq!(date_to_days(2000, 3, 1) - date_to_days(2000, 2, 28), 2);
        assert_eq!(date_to_days(1900, 3, 1) - date_to_days(1900, 2, 28), 1);
    }

    #[test]
    fn parse_literals() {
        assert_eq!(parse_date_literal("1970-01-01"), Some(0));
        assert_eq!(
            parse_date_literal("2024-12-25"),
            Some(date_to_days(2024, 12, 25))
        );
        assert_eq!(parse_date_literal("not-a-date"), None);
        assert_eq!(parse_date_literal("2024-13-01"), None);
        assert_eq!(parse_date_literal("2024-01"), None);
        assert_eq!(parse_date_literal("2024-01-01-01"), None);
    }

    proptest! {
        #[test]
        fn round_trip(days in -1_000_000i32..1_000_000) {
            let (y, m, d) = days_to_date(days);
            prop_assert_eq!(date_to_days(y, m, d), days);
        }

        #[test]
        fn ordering_preserved(a in -100_000i32..100_000, b in -100_000i32..100_000) {
            let da = days_to_date(a);
            let db = days_to_date(b);
            prop_assert_eq!(a.cmp(&b), da.cmp(&db));
        }
    }
}
