//! Parser robustness: arbitrary input must never panic — only return
//! structured errors — and valid statements must round-trip through
//! parse → plan without panicking either.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Total garbage never panics.
    #[test]
    fn arbitrary_bytes_never_panic(input in ".{0,200}") {
        let _ = polaris_sql::parse(&input);
        let _ = polaris_sql::parse_many(&input);
    }

    /// SQL-shaped garbage never panics (higher hit rate on parser paths).
    #[test]
    fn sqlish_soup_never_panics(
        words in proptest::collection::vec(
            prop_oneof![
                Just("SELECT".to_owned()), Just("FROM".to_owned()),
                Just("WHERE".to_owned()), Just("GROUP".to_owned()),
                Just("BY".to_owned()), Just("ORDER".to_owned()),
                Just("INSERT".to_owned()), Just("INTO".to_owned()),
                Just("VALUES".to_owned()), Just("UPDATE".to_owned()),
                Just("SET".to_owned()), Just("DELETE".to_owned()),
                Just("JOIN".to_owned()), Just("ON".to_owned()),
                Just("AND".to_owned()), Just("OR".to_owned()),
                Just("NOT".to_owned()), Just("NULL".to_owned()),
                Just("AS".to_owned()), Just("OF".to_owned()),
                Just("(".to_owned()), Just(")".to_owned()),
                Just(",".to_owned()), Just(";".to_owned()),
                Just("=".to_owned()), Just("<".to_owned()),
                Just("*".to_owned()), Just("'str'".to_owned()),
                Just("42".to_owned()), Just("3.14".to_owned()),
                Just("tbl".to_owned()), Just("col".to_owned()),
                Just("SUM".to_owned()), Just("COUNT".to_owned()),
                Just("BETWEEN".to_owned()), Just("LIKE".to_owned()),
                Just("IS".to_owned()), Just("DATE".to_owned()),
            ],
            0..30,
        )
    ) {
        let sql = words.join(" ");
        if let Ok(polaris_sql::Statement::Select(sel)) = polaris_sql::parse(&sql) {
            // Planning a parsed statement must not panic either.
            let _ = polaris_sql::plan_select(&sel);
        }
    }

    /// Generated well-formed selects always parse and plan.
    #[test]
    fn well_formed_selects_always_plan(
        cols in proptest::collection::vec("c_[a-z0-9_]{0,8}", 1..4),
        table in "t_[a-z0-9_]{0,8}",
        lit in any::<i32>(),
        desc in any::<bool>(),
        limit in proptest::option::of(0usize..1000),
    ) {
        let mut sql = format!("SELECT {} FROM {}", cols.join(", "), table);
        sql.push_str(&format!(" WHERE {} > {}", cols[0], lit));
        sql.push_str(&format!(" ORDER BY {}{}", cols[0], if desc { " DESC" } else { "" }));
        if let Some(n) = limit {
            sql.push_str(&format!(" LIMIT {n}"));
        }
        let stmt = polaris_sql::parse(&sql).unwrap();
        let polaris_sql::Statement::Select(sel) = stmt else { panic!() };
        polaris_sql::plan_select(&sel).unwrap();
    }
}
