//! In-memory vectorized data: column vectors and record batches.

#[cfg(test)]
use crate::Field;
use crate::{Bitmap, ColumnarError, ColumnarResult, DataType, Schema, Value};

/// A typed column of values with an optional validity mask.
///
/// `validity == None` means "all values valid" — the common case for
/// non-nullable columns, kept allocation-free.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnVector {
    /// 64-bit integers (also used for `Date32` widened to i64 at file
    /// boundaries — the file layer narrows/widens losslessly).
    Int64 {
        /// Values; entries at invalid positions are unspecified.
        values: Vec<i64>,
        /// Validity mask; `None` = all valid.
        validity: Option<Bitmap>,
    },
    /// 64-bit floats.
    Float64 {
        /// Values.
        values: Vec<f64>,
        /// Validity mask.
        validity: Option<Bitmap>,
    },
    /// UTF-8 strings.
    Utf8 {
        /// Values.
        values: Vec<String>,
        /// Validity mask.
        validity: Option<Bitmap>,
    },
    /// Booleans.
    Bool {
        /// Values.
        values: Vec<bool>,
        /// Validity mask.
        validity: Option<Bitmap>,
    },
    /// Days since epoch.
    Date32 {
        /// Values.
        values: Vec<i32>,
        /// Validity mask.
        validity: Option<Bitmap>,
    },
}

impl ColumnVector {
    /// An empty vector of the given type.
    pub fn empty(data_type: DataType) -> Self {
        match data_type {
            DataType::Int64 => ColumnVector::Int64 {
                values: vec![],
                validity: None,
            },
            DataType::Float64 => ColumnVector::Float64 {
                values: vec![],
                validity: None,
            },
            DataType::Utf8 => ColumnVector::Utf8 {
                values: vec![],
                validity: None,
            },
            DataType::Bool => ColumnVector::Bool {
                values: vec![],
                validity: None,
            },
            DataType::Date32 => ColumnVector::Date32 {
                values: vec![],
                validity: None,
            },
        }
    }

    /// Build a vector from scalars; every scalar must be NULL or match
    /// `data_type`.
    pub fn from_values(data_type: DataType, values: &[Value]) -> ColumnarResult<Self> {
        let mut v = Self::empty(data_type);
        for value in values {
            v.push(value)?;
        }
        Ok(v)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnVector::Int64 { values, .. } => values.len(),
            ColumnVector::Float64 { values, .. } => values.len(),
            ColumnVector::Utf8 { values, .. } => values.len(),
            ColumnVector::Bool { values, .. } => values.len(),
            ColumnVector::Date32 { values, .. } => values.len(),
        }
    }

    /// Is the vector empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The vector's logical type.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnVector::Int64 { .. } => DataType::Int64,
            ColumnVector::Float64 { .. } => DataType::Float64,
            ColumnVector::Utf8 { .. } => DataType::Utf8,
            ColumnVector::Bool { .. } => DataType::Bool,
            ColumnVector::Date32 { .. } => DataType::Date32,
        }
    }

    /// The validity mask, if any row is NULL.
    pub fn validity(&self) -> Option<&Bitmap> {
        match self {
            ColumnVector::Int64 { validity, .. }
            | ColumnVector::Float64 { validity, .. }
            | ColumnVector::Utf8 { validity, .. }
            | ColumnVector::Bool { validity, .. }
            | ColumnVector::Date32 { validity, .. } => validity.as_ref(),
        }
    }

    /// Is row `i` valid (non-NULL)?
    pub fn is_valid(&self, i: usize) -> bool {
        debug_assert!(i < self.len());
        self.validity().is_none_or(|v| v.get(i))
    }

    /// Number of NULLs.
    pub fn null_count(&self) -> usize {
        match self.validity() {
            None => 0,
            Some(v) => self.len() - v.count_set(),
        }
    }

    /// Scalar at row `i` (clones strings — use the typed accessors in hot
    /// paths).
    pub fn value(&self, i: usize) -> Value {
        if !self.is_valid(i) {
            return Value::Null;
        }
        match self {
            ColumnVector::Int64 { values, .. } => Value::Int(values[i]),
            ColumnVector::Float64 { values, .. } => Value::Float(values[i]),
            ColumnVector::Utf8 { values, .. } => Value::Str(values[i].clone()),
            ColumnVector::Bool { values, .. } => Value::Bool(values[i]),
            ColumnVector::Date32 { values, .. } => Value::Date(values[i]),
        }
    }

    /// Append a scalar. NULLs materialize a validity mask lazily.
    pub fn push(&mut self, value: &Value) -> ColumnarResult<()> {
        let n = self.len();
        let mismatch = |found: &Value, dt: DataType| ColumnarError::TypeMismatch {
            column: String::new(),
            expected: dt,
            found: format!("{:?}", found.data_type()),
        };
        macro_rules! push_arm {
            ($values:expr, $validity:expr, $default:expr, $extract:expr, $dt:expr) => {{
                match value {
                    Value::Null => {
                        let mask = $validity.get_or_insert_with(|| Bitmap::all_set(n));
                        mask.push(false);
                        $values.push($default);
                    }
                    v => {
                        let payload = $extract(v).ok_or_else(|| mismatch(v, $dt))?;
                        if let Some(mask) = $validity.as_mut() {
                            mask.push(true);
                        }
                        $values.push(payload);
                    }
                }
            }};
        }
        match self {
            ColumnVector::Int64 { values, validity } => {
                push_arm!(
                    values,
                    validity,
                    0i64,
                    |v: &Value| v.as_int(),
                    DataType::Int64
                )
            }
            ColumnVector::Float64 { values, validity } => push_arm!(
                values,
                validity,
                0.0f64,
                |v: &Value| match v {
                    Value::Float(f) => Some(*f),
                    _ => None,
                },
                DataType::Float64
            ),
            ColumnVector::Utf8 { values, validity } => push_arm!(
                values,
                validity,
                String::new(),
                |v: &Value| v.as_str().map(str::to_owned),
                DataType::Utf8
            ),
            ColumnVector::Bool { values, validity } => {
                push_arm!(
                    values,
                    validity,
                    false,
                    |v: &Value| v.as_bool(),
                    DataType::Bool
                )
            }
            ColumnVector::Date32 { values, validity } => {
                push_arm!(
                    values,
                    validity,
                    0i32,
                    |v: &Value| v.as_date(),
                    DataType::Date32
                )
            }
        }
        Ok(())
    }

    /// Keep only the rows at the given (ascending) indices.
    pub fn take(&self, indices: &[usize]) -> ColumnVector {
        let mut out = ColumnVector::empty(self.data_type());
        for &i in indices {
            out.push(&self.value(i)).expect("same type by construction");
        }
        out
    }

    /// Keep only rows where `mask` is set.
    pub fn filter(&self, mask: &Bitmap) -> ColumnVector {
        let indices: Vec<usize> = (0..self.len()).filter(|&i| mask.get(i)).collect();
        self.take(&indices)
    }

    /// Concatenate another vector of the same type onto this one.
    pub fn append(&mut self, other: &ColumnVector) -> ColumnarResult<()> {
        if self.data_type() != other.data_type() {
            return Err(ColumnarError::TypeMismatch {
                column: String::new(),
                expected: self.data_type(),
                found: other.data_type().to_string(),
            });
        }
        for i in 0..other.len() {
            self.push(&other.value(i))?;
        }
        Ok(())
    }
}

/// A horizontal slice of a table: a schema plus one column vector per field,
/// all the same length. The unit of data flow between operators.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordBatch {
    schema: Schema,
    columns: Vec<ColumnVector>,
    rows: usize,
}

impl RecordBatch {
    /// Build a batch, validating lengths and types against the schema.
    pub fn new(schema: Schema, columns: Vec<ColumnVector>) -> ColumnarResult<Self> {
        if schema.len() != columns.len() {
            return Err(ColumnarError::LengthMismatch {
                expected: schema.len(),
                found: columns.len(),
            });
        }
        let rows = columns.first().map_or(0, ColumnVector::len);
        for (field, col) in schema.fields().iter().zip(&columns) {
            if col.len() != rows {
                return Err(ColumnarError::LengthMismatch {
                    expected: rows,
                    found: col.len(),
                });
            }
            if col.data_type() != field.data_type {
                return Err(ColumnarError::TypeMismatch {
                    column: field.name.clone(),
                    expected: field.data_type,
                    found: col.data_type().to_string(),
                });
            }
            if !field.nullable && col.null_count() > 0 {
                return Err(ColumnarError::UnexpectedNull {
                    column: field.name.clone(),
                });
            }
        }
        Ok(RecordBatch {
            schema,
            columns,
            rows,
        })
    }

    /// An empty batch with the given schema.
    pub fn empty(schema: Schema) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| ColumnVector::empty(f.data_type))
            .collect();
        RecordBatch {
            schema,
            columns,
            rows: 0,
        }
    }

    /// Build a batch from row-major scalars (convenience for tests/SQL
    /// INSERT ... VALUES).
    pub fn from_rows(schema: Schema, rows: &[Vec<Value>]) -> ColumnarResult<Self> {
        let mut columns: Vec<ColumnVector> = schema
            .fields()
            .iter()
            .map(|f| ColumnVector::empty(f.data_type))
            .collect();
        for row in rows {
            if row.len() != schema.len() {
                return Err(ColumnarError::LengthMismatch {
                    expected: schema.len(),
                    found: row.len(),
                });
            }
            for (col, value) in columns.iter_mut().zip(row) {
                col.push(value).map_err(|e| match e {
                    ColumnarError::TypeMismatch {
                        expected, found, ..
                    } => ColumnarError::TypeMismatch {
                        column: String::new(),
                        expected,
                        found,
                    },
                    other => other,
                })?;
            }
        }
        RecordBatch::new(schema, columns)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Row count.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Column by index.
    pub fn column(&self, i: usize) -> &ColumnVector {
        &self.columns[i]
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> ColumnarResult<&ColumnVector> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// All columns.
    pub fn columns(&self) -> &[ColumnVector] {
        &self.columns
    }

    /// Row `i` as scalars.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// Keep only rows where `mask` is set.
    pub fn filter(&self, mask: &Bitmap) -> RecordBatch {
        let columns = self
            .columns
            .iter()
            .map(|c| c.filter(mask))
            .collect::<Vec<_>>();
        let rows = columns.first().map_or(0, ColumnVector::len);
        RecordBatch {
            schema: self.schema.clone(),
            columns,
            rows,
        }
    }

    /// Keep only rows at the given indices.
    pub fn take(&self, indices: &[usize]) -> RecordBatch {
        let columns = self.columns.iter().map(|c| c.take(indices)).collect();
        RecordBatch {
            schema: self.schema.clone(),
            columns,
            rows: indices.len(),
        }
    }

    /// Project onto named columns.
    pub fn project(&self, names: &[&str]) -> ColumnarResult<RecordBatch> {
        let schema = self.schema.project(names)?;
        let columns = names
            .iter()
            .map(|n| self.column_by_name(n).cloned())
            .collect::<ColumnarResult<Vec<_>>>()?;
        Ok(RecordBatch {
            schema,
            columns,
            rows: self.rows,
        })
    }

    /// Vertically concatenate batches with identical schemas.
    pub fn concat(batches: &[RecordBatch]) -> ColumnarResult<RecordBatch> {
        let Some(first) = batches.first() else {
            return Err(ColumnarError::LengthMismatch {
                expected: 1,
                found: 0,
            });
        };
        let mut columns: Vec<ColumnVector> = first
            .schema
            .fields()
            .iter()
            .map(|f| ColumnVector::empty(f.data_type))
            .collect();
        let mut rows = 0;
        for batch in batches {
            if batch.schema != first.schema {
                return Err(ColumnarError::corrupt("concat with mismatched schemas"));
            }
            for (acc, col) in columns.iter_mut().zip(&batch.columns) {
                acc.append(col)?;
            }
            rows += batch.rows;
        }
        Ok(RecordBatch {
            schema: first.schema.clone(),
            columns,
            rows,
        })
    }
}

/// Convenience constructor for a single-column schema used across tests.
#[cfg(test)]
pub(crate) fn single_column_schema(name: &str, data_type: DataType) -> Schema {
    Schema::new(vec![Field::new(name, data_type)])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::nullable("name", DataType::Utf8),
            Field::new("active", DataType::Bool),
        ])
    }

    fn test_batch() -> RecordBatch {
        RecordBatch::from_rows(
            test_schema(),
            &[
                vec![Value::Int(1), Value::Str("a".into()), Value::Bool(true)],
                vec![Value::Int(2), Value::Null, Value::Bool(false)],
                vec![Value::Int(3), Value::Str("c".into()), Value::Bool(true)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn build_and_access() {
        let b = test_batch();
        assert_eq!(b.num_rows(), 3);
        assert_eq!(b.num_columns(), 3);
        assert_eq!(b.column(0).value(1), Value::Int(2));
        assert_eq!(b.column(1).value(1), Value::Null);
        assert_eq!(b.column(1).null_count(), 1);
        assert_eq!(b.column(0).null_count(), 0);
        assert_eq!(
            b.row(2),
            vec![Value::Int(3), Value::Str("c".into()), Value::Bool(true)]
        );
    }

    #[test]
    fn null_in_non_nullable_rejected() {
        let err = RecordBatch::from_rows(
            test_schema(),
            &[vec![Value::Null, Value::Null, Value::Bool(true)]],
        )
        .unwrap_err();
        assert!(matches!(err, ColumnarError::UnexpectedNull { .. }));
    }

    #[test]
    fn type_mismatch_rejected() {
        let err = RecordBatch::from_rows(
            test_schema(),
            &[vec![Value::Str("x".into()), Value::Null, Value::Bool(true)]],
        )
        .unwrap_err();
        assert!(matches!(err, ColumnarError::TypeMismatch { .. }));
    }

    #[test]
    fn ragged_row_rejected() {
        let err = RecordBatch::from_rows(test_schema(), &[vec![Value::Int(1)]]).unwrap_err();
        assert!(matches!(err, ColumnarError::LengthMismatch { .. }));
    }

    #[test]
    fn filter_take_project() {
        let b = test_batch();
        let mut mask = Bitmap::with_len(3);
        mask.set(0);
        mask.set(2);
        let f = b.filter(&mask);
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.column(0).value(1), Value::Int(3));
        let t = b.take(&[2, 0]);
        assert_eq!(t.column(0).value(0), Value::Int(3));
        let p = b.project(&["active", "id"]).unwrap();
        assert_eq!(p.schema().fields()[0].name, "active");
        assert_eq!(p.column(1).value(0), Value::Int(1));
    }

    #[test]
    fn filter_preserves_nulls() {
        let b = test_batch();
        let mut mask = Bitmap::with_len(3);
        mask.set(1);
        let f = b.filter(&mask);
        assert_eq!(f.column(1).value(0), Value::Null);
        assert_eq!(f.column(1).null_count(), 1);
    }

    #[test]
    fn concat_batches() {
        let b = test_batch();
        let c = RecordBatch::concat(&[b.clone(), b.clone()]).unwrap();
        assert_eq!(c.num_rows(), 6);
        assert_eq!(c.column(1).null_count(), 2);
        assert!(RecordBatch::concat(&[]).is_err());
        let other = RecordBatch::empty(single_column_schema("x", DataType::Int64));
        assert!(RecordBatch::concat(&[b, other]).is_err());
    }

    #[test]
    fn date_vector() {
        let mut v = ColumnVector::empty(DataType::Date32);
        v.push(&Value::Date(100)).unwrap();
        v.push(&Value::Null).unwrap();
        assert_eq!(v.value(0), Value::Date(100));
        assert_eq!(v.value(1), Value::Null);
        assert_eq!(v.null_count(), 1);
    }

    #[test]
    fn append_type_checks() {
        let mut a = ColumnVector::empty(DataType::Int64);
        let b = ColumnVector::empty(DataType::Utf8);
        assert!(a.append(&b).is_err());
    }
}
