//! Low-level column encodings: varint/zigzag, delta, run-length,
//! dictionary, and bit-packing.
//!
//! The writer picks an encoding per column chunk based on the data
//! (see [`file`](crate::file)); every encoding here is self-contained and
//! round-trips exactly.

use crate::{ColumnarError, ColumnarResult};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Write an unsigned LEB128 varint.
pub fn put_uvarint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Read an unsigned LEB128 varint.
pub fn get_uvarint(buf: &mut Bytes) -> ColumnarResult<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(ColumnarError::corrupt("truncated varint"));
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(ColumnarError::corrupt("varint overflow"));
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// ZigZag-encode a signed integer so small magnitudes get small varints.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encode `i64` values as zigzag-varint deltas from the previous value.
/// Effective for sorted or clustered columns (keys, dates).
pub fn encode_delta_i64(values: &[i64], buf: &mut BytesMut) {
    put_uvarint(buf, values.len() as u64);
    let mut prev = 0i64;
    for &v in values {
        put_uvarint(buf, zigzag(v.wrapping_sub(prev)));
        prev = v;
    }
}

/// Decode [`encode_delta_i64`] output.
pub fn decode_delta_i64(buf: &mut Bytes) -> ColumnarResult<Vec<i64>> {
    let n = get_uvarint(buf)? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    let mut prev = 0i64;
    for _ in 0..n {
        let delta = unzigzag(get_uvarint(buf)?);
        prev = prev.wrapping_add(delta);
        out.push(prev);
    }
    Ok(out)
}

/// Run-length encode `i64` values as (value, run) pairs.
/// Effective for flag/status columns and mostly-constant columns.
pub fn encode_rle_i64(values: &[i64], buf: &mut BytesMut) {
    put_uvarint(buf, values.len() as u64);
    let mut i = 0;
    while i < values.len() {
        let v = values[i];
        let mut run = 1usize;
        while i + run < values.len() && values[i + run] == v {
            run += 1;
        }
        put_uvarint(buf, zigzag(v));
        put_uvarint(buf, run as u64);
        i += run;
    }
}

/// Decode [`encode_rle_i64`] output.
pub fn decode_rle_i64(buf: &mut Bytes) -> ColumnarResult<Vec<i64>> {
    let n = get_uvarint(buf)? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    while out.len() < n {
        let v = unzigzag(get_uvarint(buf)?);
        let run = get_uvarint(buf)? as usize;
        if run == 0 || out.len() + run > n {
            return Err(ColumnarError::corrupt("bad RLE run length"));
        }
        out.extend(std::iter::repeat_n(v, run));
    }
    Ok(out)
}

/// Count the number of runs (used by the writer's encoding heuristic).
pub fn run_count_i64(values: &[i64]) -> usize {
    if values.is_empty() {
        return 0;
    }
    1 + values.windows(2).filter(|w| w[0] != w[1]).count()
}

/// Encode `f64` values verbatim (LE bits).
pub fn encode_plain_f64(values: &[f64], buf: &mut BytesMut) {
    put_uvarint(buf, values.len() as u64);
    for &v in values {
        buf.put_f64_le(v);
    }
}

/// Decode [`encode_plain_f64`] output.
pub fn decode_plain_f64(buf: &mut Bytes) -> ColumnarResult<Vec<f64>> {
    let n = get_uvarint(buf)? as usize;
    if buf.remaining() < n * 8 {
        return Err(ColumnarError::corrupt("truncated f64 column"));
    }
    Ok((0..n).map(|_| buf.get_f64_le()).collect())
}

/// Encode strings as length-prefixed UTF-8, back to back.
pub fn encode_plain_str(values: &[String], buf: &mut BytesMut) {
    put_uvarint(buf, values.len() as u64);
    for v in values {
        put_uvarint(buf, v.len() as u64);
        buf.put_slice(v.as_bytes());
    }
}

/// Decode [`encode_plain_str`] output.
pub fn decode_plain_str(buf: &mut Bytes) -> ColumnarResult<Vec<String>> {
    let n = get_uvarint(buf)? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let len = get_uvarint(buf)? as usize;
        if buf.remaining() < len {
            return Err(ColumnarError::corrupt("truncated string payload"));
        }
        let raw = buf.split_to(len);
        let s = std::str::from_utf8(&raw)
            .map_err(|_| ColumnarError::corrupt("invalid UTF-8 in string column"))?;
        out.push(s.to_owned());
    }
    Ok(out)
}

/// Dictionary-encode strings: unique values once, then u32 codes.
/// Effective for low-cardinality columns (flags, nations, categories).
pub fn encode_dict_str(values: &[String], buf: &mut BytesMut) {
    let mut dict: Vec<&str> = Vec::new();
    let mut codes = Vec::with_capacity(values.len());
    let mut index = std::collections::HashMap::new();
    for v in values {
        let code = *index.entry(v.as_str()).or_insert_with(|| {
            dict.push(v.as_str());
            dict.len() - 1
        });
        codes.push(code as u64);
    }
    put_uvarint(buf, dict.len() as u64);
    for d in &dict {
        put_uvarint(buf, d.len() as u64);
        buf.put_slice(d.as_bytes());
    }
    put_uvarint(buf, codes.len() as u64);
    for c in codes {
        put_uvarint(buf, c);
    }
}

/// Decode [`encode_dict_str`] output.
pub fn decode_dict_str(buf: &mut Bytes) -> ColumnarResult<Vec<String>> {
    let dict_len = get_uvarint(buf)? as usize;
    let mut dict = Vec::with_capacity(dict_len.min(1 << 20));
    for _ in 0..dict_len {
        let len = get_uvarint(buf)? as usize;
        if buf.remaining() < len {
            return Err(ColumnarError::corrupt("truncated dictionary entry"));
        }
        let raw = buf.split_to(len);
        let s = std::str::from_utf8(&raw)
            .map_err(|_| ColumnarError::corrupt("invalid UTF-8 in dictionary"))?;
        dict.push(s.to_owned());
    }
    let n = get_uvarint(buf)? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let code = get_uvarint(buf)? as usize;
        let entry = dict
            .get(code)
            .ok_or_else(|| ColumnarError::corrupt("dictionary code out of range"))?;
        out.push(entry.clone());
    }
    Ok(out)
}

/// Count distinct values (used by the writer's dictionary heuristic).
pub fn distinct_count_str(values: &[String]) -> usize {
    values
        .iter()
        .map(|s| s.as_str())
        .collect::<std::collections::HashSet<_>>()
        .len()
}

/// Bit-pack booleans, 8 per byte, LSB first.
pub fn encode_bool(values: &[bool], buf: &mut BytesMut) {
    put_uvarint(buf, values.len() as u64);
    let mut byte = 0u8;
    for (i, &v) in values.iter().enumerate() {
        if v {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            buf.put_u8(byte);
            byte = 0;
        }
    }
    if !values.len().is_multiple_of(8) {
        buf.put_u8(byte);
    }
}

/// Decode [`encode_bool`] output.
pub fn decode_bool(buf: &mut Bytes) -> ColumnarResult<Vec<bool>> {
    let n = get_uvarint(buf)? as usize;
    let bytes_needed = n.div_ceil(8);
    if buf.remaining() < bytes_needed {
        return Err(ColumnarError::corrupt("truncated bool column"));
    }
    let raw = buf.split_to(bytes_needed);
    Ok((0..n).map(|i| raw[i / 8] >> (i % 8) & 1 == 1).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX] {
            let mut buf = BytesMut::new();
            put_uvarint(&mut buf, v);
            let mut b = buf.freeze();
            assert_eq!(get_uvarint(&mut b).unwrap(), v);
            assert!(b.is_empty());
        }
    }

    #[test]
    fn zigzag_round_trip_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 42, -42] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // small magnitudes map to small codes
        assert!(zigzag(-1) < 4);
        assert!(zigzag(1) < 4);
    }

    #[test]
    fn truncated_inputs_error() {
        let mut b = Bytes::from_static(&[0x80]);
        assert!(get_uvarint(&mut b).is_err());
        let mut buf = BytesMut::new();
        encode_plain_str(["hello".to_owned()].as_ref(), &mut buf);
        let full = buf.freeze();
        let mut cut = full.slice(..full.len() - 2);
        assert!(decode_plain_str(&mut cut).is_err());
    }

    #[test]
    fn rle_compresses_runs() {
        let values = vec![7i64; 10_000];
        let mut rle = BytesMut::new();
        encode_rle_i64(&values, &mut rle);
        assert!(
            rle.len() < 16,
            "constant column should be tiny, got {}",
            rle.len()
        );
        assert_eq!(run_count_i64(&values), 1);
        assert_eq!(run_count_i64(&[1, 1, 2, 2, 3]), 3);
        assert_eq!(run_count_i64(&[]), 0);
    }

    #[test]
    fn dict_compresses_low_cardinality() {
        let values: Vec<String> = (0..1000).map(|i| format!("cat-{}", i % 4)).collect();
        let mut dict = BytesMut::new();
        encode_dict_str(&values, &mut dict);
        let mut plain = BytesMut::new();
        encode_plain_str(&values, &mut plain);
        assert!(dict.len() < plain.len() / 3);
        assert_eq!(distinct_count_str(&values), 4);
    }

    #[test]
    fn invalid_dict_code_rejected() {
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, 1); // dict of one entry
        put_uvarint(&mut buf, 1);
        buf.put_slice(b"a");
        put_uvarint(&mut buf, 1); // one code
        put_uvarint(&mut buf, 9); // out of range
        assert!(decode_dict_str(&mut buf.freeze()).is_err());
    }

    proptest! {
        #[test]
        fn delta_round_trip(values in proptest::collection::vec(any::<i64>(), 0..200)) {
            let mut buf = BytesMut::new();
            encode_delta_i64(&values, &mut buf);
            let decoded = decode_delta_i64(&mut buf.freeze()).unwrap();
            prop_assert_eq!(decoded, values);
        }

        #[test]
        fn rle_round_trip(values in proptest::collection::vec(-5i64..5, 0..300)) {
            let mut buf = BytesMut::new();
            encode_rle_i64(&values, &mut buf);
            let decoded = decode_rle_i64(&mut buf.freeze()).unwrap();
            prop_assert_eq!(decoded, values);
        }

        #[test]
        fn f64_round_trip(values in proptest::collection::vec(any::<f64>(), 0..100)) {
            let mut buf = BytesMut::new();
            encode_plain_f64(&values, &mut buf);
            let decoded = decode_plain_f64(&mut buf.freeze()).unwrap();
            prop_assert_eq!(decoded.len(), values.len());
            for (d, v) in decoded.iter().zip(values.iter()) {
                prop_assert_eq!(d.to_bits(), v.to_bits());
            }
        }

        #[test]
        fn str_round_trips(values in proptest::collection::vec(".{0,20}", 0..50)) {
            let mut plain = BytesMut::new();
            encode_plain_str(&values, &mut plain);
            prop_assert_eq!(&decode_plain_str(&mut plain.freeze()).unwrap(), &values);
            let mut dict = BytesMut::new();
            encode_dict_str(&values, &mut dict);
            prop_assert_eq!(&decode_dict_str(&mut dict.freeze()).unwrap(), &values);
        }

        #[test]
        fn bool_round_trip(values in proptest::collection::vec(any::<bool>(), 0..200)) {
            let mut buf = BytesMut::new();
            encode_bool(&values, &mut buf);
            prop_assert_eq!(decode_bool(&mut buf.freeze()).unwrap(), values);
        }
    }
}
