//! Delete-vector files: row-level tombstones for immutable data files.

use crate::{Bitmap, ColumnarError, ColumnarResult};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A delete vector marks rows of one immutable data file as deleted
/// (merge-on-read, §2.1). It is itself an immutable file: when more rows of
/// the same data file are deleted, a *merged* delete vector is written and
/// the old one logically removed from the manifest — exactly the
/// "one Delete + one Add" pattern of the paper's §4.2 example.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DeleteVector {
    deleted: Bitmap,
}

const DV_MAGIC: &[u8; 4] = b"PDV1";

impl DeleteVector {
    /// An empty delete vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from row indices.
    pub fn from_rows(rows: impl IntoIterator<Item = usize>) -> Self {
        let mut dv = Self::new();
        for r in rows {
            dv.delete_row(r);
        }
        dv
    }

    /// Mark row `row` of the target data file as deleted.
    pub fn delete_row(&mut self, row: usize) {
        self.deleted.set(row);
    }

    /// Is row `row` deleted?
    pub fn is_deleted(&self, row: usize) -> bool {
        self.deleted.get(row)
    }

    /// Number of deleted rows.
    pub fn cardinality(&self) -> usize {
        self.deleted.count_set()
    }

    /// Merge another delete vector for the same data file into this one.
    ///
    /// Deletes are monotone within a data file's lifetime — a merged vector
    /// is always a superset of its inputs.
    pub fn merge(&mut self, other: &DeleteVector) {
        self.deleted.union_with(&other.deleted);
    }

    /// Iterate deleted row indices, ascending.
    pub fn iter_deleted(&self) -> impl Iterator<Item = usize> + '_ {
        self.deleted.iter_set()
    }

    /// Underlying bitmap (for scan-time masking).
    pub fn bitmap(&self) -> &Bitmap {
        &self.deleted
    }

    /// Serialize to the delete-vector file format.
    pub fn to_bytes(&self) -> Bytes {
        let bm = self.deleted.to_bytes();
        let mut buf = BytesMut::with_capacity(4 + 4 + bm.len());
        buf.put_slice(DV_MAGIC);
        buf.put_u32_le(bm.len() as u32);
        buf.put_slice(&bm);
        buf.freeze()
    }

    /// Parse a delete-vector file.
    pub fn from_bytes(mut data: Bytes) -> ColumnarResult<Self> {
        if data.len() < 8 || &data[..4] != DV_MAGIC {
            return Err(ColumnarError::corrupt("bad delete-vector magic"));
        }
        data.advance(4);
        let len = data.get_u32_le() as usize;
        if data.len() != len {
            return Err(ColumnarError::corrupt(format!(
                "delete-vector payload: expected {len} bytes, found {}",
                data.len()
            )));
        }
        Ok(DeleteVector {
            deleted: Bitmap::from_bytes(data)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn delete_and_query() {
        let mut dv = DeleteVector::new();
        dv.delete_row(3);
        dv.delete_row(100);
        assert!(dv.is_deleted(3));
        assert!(!dv.is_deleted(4));
        assert!(dv.is_deleted(100));
        assert_eq!(dv.cardinality(), 2);
        assert_eq!(dv.iter_deleted().collect::<Vec<_>>(), vec![3, 100]);
    }

    #[test]
    fn merge_is_union() {
        let a = DeleteVector::from_rows([1, 5]);
        let b = DeleteVector::from_rows([5, 9]);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.iter_deleted().collect::<Vec<_>>(), vec![1, 5, 9]);
        // superset property
        for r in a.iter_deleted().chain(b.iter_deleted()) {
            assert!(m.is_deleted(r));
        }
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        assert!(DeleteVector::from_bytes(Bytes::from_static(b"XXXX\0\0\0\0")).is_err());
        let good = DeleteVector::from_rows([2]).to_bytes();
        let truncated = good.slice(..good.len() - 1);
        assert!(DeleteVector::from_bytes(truncated).is_err());
    }

    proptest! {
        #[test]
        fn file_round_trip(rows in proptest::collection::btree_set(0usize..2000, 0..100)) {
            let dv = DeleteVector::from_rows(rows.iter().copied());
            let back = DeleteVector::from_bytes(dv.to_bytes()).unwrap();
            prop_assert_eq!(&back, &dv);
            prop_assert_eq!(back.cardinality(), rows.len());
        }

        #[test]
        fn merge_commutes(
            a in proptest::collection::btree_set(0usize..500, 0..50),
            b in proptest::collection::btree_set(0usize..500, 0..50),
        ) {
            let va = DeleteVector::from_rows(a.iter().copied());
            let vb = DeleteVector::from_rows(b.iter().copied());
            let mut ab = va.clone();
            ab.merge(&vb);
            let mut ba = vb.clone();
            ba.merge(&va);
            prop_assert_eq!(
                ab.iter_deleted().collect::<Vec<_>>(),
                ba.iter_deleted().collect::<Vec<_>>()
            );
        }
    }
}
