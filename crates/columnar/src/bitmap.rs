//! Fixed-capacity bitmaps used for validity masks and delete vectors.

use crate::{ColumnarError, ColumnarResult};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A growable bitmap over `u64` words.
///
/// Used in two roles:
/// * validity (null) masks inside [`ColumnVector`](crate::ColumnVector)s;
/// * row-level *delete vectors* attached to immutable data files (§2.1's
///   merge-on-read scheme).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    /// Logical length in bits.
    len: usize,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// A bitmap of `len` bits, all clear.
    pub fn with_len(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// A bitmap of `len` bits, all set.
    pub fn all_set(len: usize) -> Self {
        let mut b = Self::with_len(len);
        for w in &mut b.words {
            *w = u64::MAX;
        }
        b.mask_tail();
        b
    }

    /// Clear bits past the logical length so popcount stays exact.
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Logical length in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the logical length zero?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Get bit `i`; bits past the end read as clear.
    pub fn get(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Set bit `i`, growing the logical length if needed.
    pub fn set(&mut self, i: usize) {
        if i >= self.len {
            self.len = i + 1;
            let need = self.len.div_ceil(64);
            if self.words.len() < need {
                self.words.resize(need, 0);
            }
        }
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clear bit `i` (no-op past the end).
    pub fn clear(&mut self, i: usize) {
        if i < self.len {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Append a bit at the end.
    pub fn push(&mut self, bit: bool) {
        let i = self.len;
        self.len += 1;
        let need = self.len.div_ceil(64);
        if self.words.len() < need {
            self.words.resize(need, 0);
        }
        if bit {
            self.words[i / 64] |= 1 << (i % 64);
        }
    }

    /// Number of set bits.
    pub fn count_set(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Union with `other` in place; the result length is the max of both.
    pub fn union_with(&mut self, other: &Bitmap) {
        if other.len > self.len {
            self.len = other.len;
            self.words.resize(self.len.div_ceil(64), 0);
        }
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w |= o;
        }
    }

    /// Iterate over the indices of set bits, ascending.
    pub fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }

    /// Serialize: `len` as u64 LE, then the words.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(8 + self.words.len() * 8);
        buf.put_u64_le(self.len as u64);
        for w in &self.words {
            buf.put_u64_le(*w);
        }
        buf.freeze()
    }

    /// Deserialize from [`to_bytes`](Bitmap::to_bytes) output.
    pub fn from_bytes(mut data: Bytes) -> ColumnarResult<Self> {
        if data.len() < 8 {
            return Err(ColumnarError::corrupt("bitmap too short"));
        }
        let len = data.get_u64_le() as usize;
        let want_words = len.div_ceil(64);
        if data.len() != want_words * 8 {
            return Err(ColumnarError::corrupt(format!(
                "bitmap of {len} bits should have {want_words} words, found {} bytes",
                data.len()
            )));
        }
        let mut words = Vec::with_capacity(want_words);
        for _ in 0..want_words {
            words.push(data.get_u64_le());
        }
        let mut bm = Bitmap { words, len };
        bm.mask_tail();
        Ok(bm)
    }
}

impl FromIterator<bool> for Bitmap {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let mut b = Bitmap::new();
        for bit in iter {
            b.push(bit);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn set_get_clear() {
        let mut b = Bitmap::with_len(10);
        assert!(!b.get(3));
        b.set(3);
        assert!(b.get(3));
        b.clear(3);
        assert!(!b.get(3));
        assert_eq!(b.len(), 10);
        b.set(100); // grows
        assert_eq!(b.len(), 101);
        assert!(b.get(100));
        assert!(!b.get(99));
        assert!(!b.get(5000)); // out of range reads clear
    }

    #[test]
    fn all_set_counts_exactly() {
        for len in [0, 1, 63, 64, 65, 130] {
            let b = Bitmap::all_set(len);
            assert_eq!(b.count_set(), len, "len={len}");
        }
    }

    #[test]
    fn union_extends() {
        let mut a = Bitmap::with_len(4);
        a.set(1);
        let mut b = Bitmap::with_len(80);
        b.set(70);
        a.union_with(&b);
        assert_eq!(a.len(), 80);
        assert!(a.get(1) && a.get(70));
        assert_eq!(a.count_set(), 2);
    }

    #[test]
    fn iter_set_ascending() {
        let mut b = Bitmap::new();
        for i in [5usize, 0, 64, 63, 128] {
            b.set(i);
        }
        assert_eq!(b.iter_set().collect::<Vec<_>>(), vec![0, 5, 63, 64, 128]);
    }

    #[test]
    fn from_iter_round_trip() {
        let bits = [true, false, true, true, false];
        let b: Bitmap = bits.iter().copied().collect();
        assert_eq!(b.len(), 5);
        for (i, &bit) in bits.iter().enumerate() {
            assert_eq!(b.get(i), bit);
        }
    }

    #[test]
    fn rejects_corrupt_bytes() {
        assert!(Bitmap::from_bytes(Bytes::from_static(b"abc")).is_err());
        let mut good = Bitmap::with_len(100);
        good.set(42);
        let mut raw = good.to_bytes().to_vec();
        raw.pop();
        assert!(Bitmap::from_bytes(Bytes::from(raw)).is_err());
    }

    proptest! {
        #[test]
        fn serde_round_trip(indices in proptest::collection::vec(0usize..500, 0..50)) {
            let mut b = Bitmap::new();
            for &i in &indices {
                b.set(i);
            }
            let back = Bitmap::from_bytes(b.to_bytes()).unwrap();
            prop_assert_eq!(&back, &b);
            prop_assert_eq!(back.count_set(), b.count_set());
        }

        #[test]
        fn count_matches_iter(indices in proptest::collection::vec(0usize..300, 0..40)) {
            let mut b = Bitmap::new();
            for &i in &indices {
                b.set(i);
            }
            prop_assert_eq!(b.iter_set().count(), b.count_set());
        }
    }
}
