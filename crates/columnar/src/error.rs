//! Error type for columnar encode/decode and batch construction.

use crate::DataType;
use std::fmt;

/// Result alias for columnar operations.
pub type ColumnarResult<T> = Result<T, ColumnarError>;

/// Errors raised while building, encoding or decoding columnar data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnarError {
    /// A value's type did not match the column's declared type.
    TypeMismatch {
        /// Column name.
        column: String,
        /// Declared type.
        expected: DataType,
        /// Observed type description.
        found: String,
    },
    /// Columns of a batch (or file) had inconsistent lengths.
    LengthMismatch {
        /// Expected row count.
        expected: usize,
        /// Observed row count.
        found: usize,
    },
    /// A null appeared in a non-nullable column.
    UnexpectedNull {
        /// Column name.
        column: String,
    },
    /// The file bytes are not a valid columnar file.
    Corrupt {
        /// Description of the corruption.
        detail: String,
    },
    /// Referenced a column that does not exist in the schema.
    UnknownColumn {
        /// Column name.
        column: String,
    },
}

impl fmt::Display for ColumnarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnarError::TypeMismatch {
                column,
                expected,
                found,
            } => {
                write!(
                    f,
                    "type mismatch in column {column:?}: expected {expected}, found {found}"
                )
            }
            ColumnarError::LengthMismatch { expected, found } => {
                write!(
                    f,
                    "column length mismatch: expected {expected} rows, found {found}"
                )
            }
            ColumnarError::UnexpectedNull { column } => {
                write!(f, "null value in non-nullable column {column:?}")
            }
            ColumnarError::Corrupt { detail } => write!(f, "corrupt columnar file: {detail}"),
            ColumnarError::UnknownColumn { column } => {
                write!(f, "unknown column {column:?}")
            }
        }
    }
}

impl std::error::Error for ColumnarError {}

impl ColumnarError {
    /// Shorthand for [`ColumnarError::Corrupt`].
    pub fn corrupt(detail: impl Into<String>) -> Self {
        ColumnarError::Corrupt {
            detail: detail.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_fields() {
        let e = ColumnarError::TypeMismatch {
            column: "qty".into(),
            expected: DataType::Int64,
            found: "Utf8".into(),
        };
        let s = e.to_string();
        assert!(s.contains("qty") && s.contains("Int64") && s.contains("Utf8"));
        assert!(ColumnarError::corrupt("bad magic")
            .to_string()
            .contains("bad magic"));
    }
}
