//! Per-column statistics used for scan pruning and compaction triggers.

use crate::{ColumnVector, Value};
use std::cmp::Ordering;

/// Min/max/null statistics for one column chunk.
///
/// Scans prune row groups whose `[min, max]` interval cannot satisfy a
/// predicate; the STO's compaction trigger (§5.1) aggregates row and delete
/// counts gathered alongside these stats during SELECTs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ColumnStats {
    /// Minimum non-null value, if any non-null value exists.
    pub min: Option<Value>,
    /// Maximum non-null value, if any non-null value exists.
    pub max: Option<Value>,
    /// Number of NULLs.
    pub null_count: u64,
    /// Total number of rows covered.
    pub row_count: u64,
}

impl ColumnStats {
    /// Compute stats over a vector.
    pub fn from_vector(v: &ColumnVector) -> Self {
        let mut stats = ColumnStats {
            row_count: v.len() as u64,
            ..Default::default()
        };
        for i in 0..v.len() {
            stats.observe(&v.value(i));
        }
        // row_count was double-counted by observe; fix up.
        stats.row_count = v.len() as u64;
        stats
    }

    /// Fold one value into the stats.
    pub fn observe(&mut self, value: &Value) {
        self.row_count += 1;
        if value.is_null() {
            self.null_count += 1;
            return;
        }
        match &self.min {
            None => self.min = Some(value.clone()),
            Some(m) => {
                if value.sql_cmp(m) == Some(Ordering::Less) {
                    self.min = Some(value.clone());
                }
            }
        }
        match &self.max {
            None => self.max = Some(value.clone()),
            Some(m) => {
                if value.sql_cmp(m) == Some(Ordering::Greater) {
                    self.max = Some(value.clone());
                }
            }
        }
    }

    /// Merge stats from another chunk of the same column.
    pub fn merge(&mut self, other: &ColumnStats) {
        self.null_count += other.null_count;
        self.row_count += other.row_count;
        for v in [&other.min, &other.max].into_iter().flatten() {
            let mut probe = ColumnStats::default();
            std::mem::swap(self, &mut probe);
            probe.observe(v);
            probe.row_count -= 1; // observe counts a row; merge must not
            *self = probe;
        }
    }

    /// Could a value equal to `v` exist in this chunk?
    pub fn may_contain(&self, v: &Value) -> bool {
        match (&self.min, &self.max) {
            (Some(min), Some(max)) => {
                min.sql_cmp(v) != Some(Ordering::Greater) && max.sql_cmp(v) != Some(Ordering::Less)
            }
            // No non-null values at all: only NULL predicates can match,
            // and those are handled separately.
            _ => false,
        }
    }

    /// Could a value strictly greater than `v` exist?
    pub fn may_contain_gt(&self, v: &Value) -> bool {
        self.max
            .as_ref()
            .is_some_and(|max| max.sql_cmp(v) == Some(Ordering::Greater))
    }

    /// Could a value strictly less than `v` exist?
    pub fn may_contain_lt(&self, v: &Value) -> bool {
        self.min
            .as_ref()
            .is_some_and(|min| min.sql_cmp(v) == Some(Ordering::Less))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataType;

    #[test]
    fn stats_over_vector() {
        let v = ColumnVector::from_values(
            DataType::Int64,
            &[Value::Int(5), Value::Null, Value::Int(-2), Value::Int(9)],
        )
        .unwrap();
        let s = ColumnStats::from_vector(&v);
        assert_eq!(s.min, Some(Value::Int(-2)));
        assert_eq!(s.max, Some(Value::Int(9)));
        assert_eq!(s.null_count, 1);
        assert_eq!(s.row_count, 4);
    }

    #[test]
    fn all_null_chunk() {
        let v = ColumnVector::from_values(DataType::Int64, &[Value::Null, Value::Null]).unwrap();
        let s = ColumnStats::from_vector(&v);
        assert_eq!(s.min, None);
        assert!(!s.may_contain(&Value::Int(0)));
        assert!(!s.may_contain_gt(&Value::Int(0)));
        assert!(!s.may_contain_lt(&Value::Int(0)));
    }

    #[test]
    fn pruning_bounds() {
        let mut s = ColumnStats::default();
        s.observe(&Value::Int(10));
        s.observe(&Value::Int(20));
        assert!(s.may_contain(&Value::Int(10)));
        assert!(s.may_contain(&Value::Int(15)));
        assert!(!s.may_contain(&Value::Int(9)));
        assert!(!s.may_contain(&Value::Int(21)));
        assert!(s.may_contain_gt(&Value::Int(19)));
        assert!(!s.may_contain_gt(&Value::Int(20)));
        assert!(s.may_contain_lt(&Value::Int(11)));
        assert!(!s.may_contain_lt(&Value::Int(10)));
    }

    #[test]
    fn merge_combines_ranges_and_counts() {
        let mut a = ColumnStats::default();
        a.observe(&Value::Int(1));
        a.observe(&Value::Null);
        let mut b = ColumnStats::default();
        b.observe(&Value::Int(100));
        a.merge(&b);
        assert_eq!(a.min, Some(Value::Int(1)));
        assert_eq!(a.max, Some(Value::Int(100)));
        assert_eq!(a.null_count, 1);
        assert_eq!(a.row_count, 3);
    }

    #[test]
    fn string_stats() {
        let mut s = ColumnStats::default();
        s.observe(&Value::Str("beta".into()));
        s.observe(&Value::Str("alpha".into()));
        assert_eq!(s.min, Some(Value::Str("alpha".into())));
        assert!(s.may_contain(&Value::Str("azure".into())));
        assert!(!s.may_contain(&Value::Str("zeta".into())));
    }
}
