//! Table and file schemas.

use crate::{ColumnarError, ColumnarResult, DataType};
use std::fmt;
use std::sync::Arc;

/// A named, typed column with nullability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name (case-sensitive internally; the SQL layer lower-cases).
    pub name: String,
    /// Logical type.
    pub data_type: DataType,
    /// Whether NULLs are permitted.
    pub nullable: bool,
}

impl Field {
    /// A non-nullable field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
            nullable: false,
        }
    }

    /// A nullable field.
    pub fn nullable(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
            nullable: true,
        }
    }
}

/// An ordered collection of fields. Cheap to clone (`Arc` inside).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Arc<Vec<Field>>,
}

impl Schema {
    /// Build a schema; panics on duplicate column names (a programming
    /// error, not an input error — DDL validation happens in the SQL layer).
    pub fn new(fields: Vec<Field>) -> Self {
        for (i, f) in fields.iter().enumerate() {
            assert!(
                !fields[..i].iter().any(|g| g.name == f.name),
                "duplicate column name {:?}",
                f.name
            );
        }
        Schema {
            fields: Arc::new(fields),
        }
    }

    /// The fields, in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Is the schema empty?
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the column named `name`.
    pub fn index_of(&self, name: &str) -> ColumnarResult<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| ColumnarError::UnknownColumn {
                column: name.to_owned(),
            })
    }

    /// The field named `name`.
    pub fn field(&self, name: &str) -> ColumnarResult<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// Project onto the named columns, preserving the order given.
    pub fn project(&self, names: &[&str]) -> ColumnarResult<Schema> {
        let fields = names
            .iter()
            .map(|n| self.field(n).cloned())
            .collect::<ColumnarResult<Vec<_>>>()?;
        Ok(Schema::new(fields))
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", field.name, field.data_type)?;
            if field.nullable {
                write!(f, " NULL")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::nullable("name", DataType::Utf8),
            Field::new("price", DataType::Float64),
        ])
    }

    #[test]
    fn lookup_by_name() {
        let s = schema();
        assert_eq!(s.index_of("price").unwrap(), 2);
        assert_eq!(s.field("name").unwrap().data_type, DataType::Utf8);
        assert!(s.field("name").unwrap().nullable);
        assert!(matches!(
            s.index_of("ghost"),
            Err(ColumnarError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn projection_reorders() {
        let s = schema();
        let p = s.project(&["price", "id"]).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.fields()[0].name, "price");
        assert_eq!(p.fields()[1].name, "id");
        assert!(s.project(&["nope"]).is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_names_panic() {
        Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("a", DataType::Utf8),
        ]);
    }

    #[test]
    fn display_format() {
        assert_eq!(
            schema().to_string(),
            "(id Int64, name Utf8 NULL, price Float64)"
        );
    }
}
