//! # polaris-columnar
//!
//! Immutable columnar file format — the Parquet stand-in for the Polaris
//! reproduction.
//!
//! The paper stores table data in immutable Parquet files (§2). Everything
//! the transaction layer needs from the format is:
//!
//! * **immutability** — files are written once; updates/deletes never touch
//!   them, they add *delete vectors* instead (merge-on-read, §2.1);
//! * **columnar layout** with per-column min/max/null statistics so scans
//!   can prune row groups against predicates;
//! * **self-description** — a footer describing schema and row groups so a
//!   file is readable in isolation;
//! * **row-group granularity** so a large file can be split into multiple
//!   data *cells* for parallel processing (§2.3).
//!
//! This crate provides all of that:
//!
//! * [`Schema`] / [`Field`] / [`DataType`] — logical types.
//! * [`Value`] — dynamically typed scalar used for literals and statistics.
//! * [`ColumnVector`] / [`RecordBatch`] — the in-memory vectorized form.
//! * [`ColumnarWriter`] / [`ColumnarFile`] — file encode/decode with
//!   plain, run-length, delta-varint, dictionary and bit-packed encodings.
//! * [`Bitmap`] / [`DeleteVector`] — the deletion-vector file format.
//! * [`zorder`] — Z-order key interleaving used for range partitioning.

mod bitmap;
mod delete_vector;
mod encoding;
mod error;
mod file;
mod schema;
mod stats;
mod value;
mod vector;
pub mod zorder;

pub use bitmap::Bitmap;
pub use delete_vector::DeleteVector;
pub use error::{ColumnarError, ColumnarResult};
pub use file::{
    ColumnChunkMeta, ColumnarFile, ColumnarFooter, ColumnarWriter, RowGroupMeta, WriterOptions,
};
pub use schema::{Field, Schema};
pub use stats::ColumnStats;
pub use value::{DataType, Value};
pub use vector::{ColumnVector, RecordBatch};
