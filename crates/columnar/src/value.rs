//! Logical data types and dynamically typed scalar values.

use std::cmp::Ordering;
use std::fmt;

/// Logical column types supported by the engine.
///
/// A deliberately small set: the TPC-H/TPC-DS-shaped evaluation workloads
/// need integers, decimals (modelled as `Float64`), strings, booleans and
/// dates (modelled as days-since-epoch `Date32`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE float (also used for decimals).
    Float64,
    /// UTF-8 string.
    Utf8,
    /// Boolean.
    Bool,
    /// Days since 1970-01-01, stored as `i32`.
    Date32,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int64 => "Int64",
            DataType::Float64 => "Float64",
            DataType::Utf8 => "Utf8",
            DataType::Bool => "Bool",
            DataType::Date32 => "Date32",
        };
        f.write_str(s)
    }
}

/// A dynamically typed scalar: literal values, statistics bounds, and
/// row-wise interfaces all use `Value`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// An [`DataType::Int64`] value.
    Int(i64),
    /// A [`DataType::Float64`] value.
    Float(f64),
    /// A [`DataType::Utf8`] value.
    Str(String),
    /// A [`DataType::Bool`] value.
    Bool(bool),
    /// A [`DataType::Date32`] value (days since epoch).
    Date(i32),
}

impl Value {
    /// The logical type of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int64),
            Value::Float(_) => Some(DataType::Float64),
            Value::Str(_) => Some(DataType::Utf8),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Date(_) => Some(DataType::Date32),
        }
    }

    /// Is this SQL NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Float payload; integers widen losslessly-enough for aggregation.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// String payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Date payload, if this is a `Date`.
    pub fn as_date(&self) -> Option<i32> {
        match self {
            Value::Date(v) => Some(*v),
            _ => None,
        }
    }

    /// SQL comparison semantics: NULL compares as unknown (`None`); values
    /// of incompatible types also yield `None`. Int/Float compare
    /// numerically.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Date(a), Value::Date(b)) => Some(a.cmp(b)),
            (Value::Date(a), Value::Int(b)) => Some((*a as i64).cmp(b)),
            (Value::Int(a), Value::Date(b)) => Some(a.cmp(&(*b as i64))),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Route through `pad` so callers' width/alignment flags apply.
        let s = match self {
            Value::Null => "NULL".to_owned(),
            Value::Int(v) => v.to_string(),
            Value::Float(v) => v.to_string(),
            Value::Str(v) => v.clone(),
            Value::Bool(v) => v.to_string(),
            Value::Date(v) => format!("date#{v}"),
        };
        f.pad(&s)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_round_trip() {
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int64));
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Date(10).data_type(), Some(DataType::Date32));
    }

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_numeric_widening() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(1.5).sql_cmp(&Value::Int(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn sql_cmp_incompatible_types_is_unknown() {
        assert_eq!(Value::Str("a".into()).sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Bool(true).sql_cmp(&Value::Str("t".into())), None);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Date(7).as_date(), Some(7));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Str("x".into()).as_int(), None);
    }
}
