//! Z-order (Morton) key interleaving.
//!
//! Polaris overlays columnar data with an index for range-based retrieval
//! over a composite key by Z-ordering rows within each distribution (§2.3):
//! the partitioning function `p(r)` is the order induced by the interleaved
//! key. Sorting rows by their Z-value clusters nearby composite keys into
//! the same data cells, so min/max stats prune multi-column range
//! predicates effectively.

/// Interleave the bits of up to 4 dimension keys into one 128-bit Z-value.
///
/// Each dimension contributes its `min(64, 128 / dims.len())` high-order
/// bits, so 1- and 2-dimension keys interleave losslessly while 3- and
/// 4-dimension keys keep their most significant 42/32 bits — plenty for
/// clustering. Keys should be normalized to unsigned (see [`normalize_i64`])
/// before interleaving so ordering is preserved.
pub fn zvalue(dims: &[u64]) -> u128 {
    assert!(
        !dims.is_empty() && dims.len() <= 4,
        "z-order supports 1..=4 dimensions"
    );
    let n = dims.len() as u32;
    let bits_per_dim = (128 / n).min(64);
    let mut out = 0u128;
    for bit in 0..bits_per_dim {
        for (d, &key) in dims.iter().enumerate() {
            // Take bits from the top of each key so coarse ordering is
            // preserved under truncation.
            let src_bit = 63 - bit;
            let b = ((key >> src_bit) & 1) as u128;
            let dst_bit = 127 - (bit * n + d as u32);
            out |= b << dst_bit;
        }
    }
    out
}

/// Map a signed key to an unsigned key preserving order
/// (`i64::MIN → 0`, `i64::MAX → u64::MAX`).
pub fn normalize_i64(v: i64) -> u64 {
    (v as u64) ^ (1 << 63)
}

/// Map a float to an unsigned key preserving IEEE total order (negatives
/// reverse, positives shift above them; NaN sorts last).
pub fn normalize_f64(v: f64) -> u64 {
    let bits = v.to_bits();
    if bits & (1 << 63) != 0 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Compute the sort permutation that orders rows by the Z-value of their
/// composite keys. `keys[i]` holds the normalized key values for row `i`.
pub fn zorder_permutation(keys: &[Vec<u64>]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..keys.len()).collect();
    idx.sort_by_key(|&i| zvalue(&keys[i]));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_dim_preserves_order() {
        let a = zvalue(&[normalize_i64(-5)]);
        let b = zvalue(&[normalize_i64(3)]);
        let c = zvalue(&[normalize_i64(1000)]);
        assert!(a < b && b < c);
    }

    #[test]
    fn normalize_preserves_order_at_extremes() {
        assert_eq!(normalize_i64(i64::MIN), 0);
        assert_eq!(normalize_i64(i64::MAX), u64::MAX);
        assert!(normalize_i64(-1) < normalize_i64(0));
        assert!(normalize_i64(0) < normalize_i64(1));
    }

    #[test]
    fn two_dims_cluster_locality() {
        // Points near each other in both dimensions get nearby z-values:
        // the quadrant ordering (low/low < low/high,high/low < high/high)
        // must hold for high-order bits.
        let ll = zvalue(&[0, 0]);
        let lh = zvalue(&[0, u64::MAX]);
        let hl = zvalue(&[u64::MAX, 0]);
        let hh = zvalue(&[u64::MAX, u64::MAX]);
        assert!(ll < lh && ll < hl);
        assert!(lh < hh && hl < hh);
    }

    #[test]
    fn permutation_sorts_by_zvalue() {
        let keys = vec![
            vec![normalize_i64(9), normalize_i64(9)],
            vec![normalize_i64(0), normalize_i64(0)],
            vec![normalize_i64(5), normalize_i64(5)],
        ];
        let perm = zorder_permutation(&keys);
        assert_eq!(perm, vec![1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "z-order supports")]
    fn too_many_dims_panics() {
        zvalue(&[0, 0, 0, 0, 0]);
    }

    #[test]
    fn normalize_f64_preserves_order() {
        let values = [-f64::INFINITY, -100.5, -0.0, 0.0, 1e-9, 42.0, f64::INFINITY];
        for w in values.windows(2) {
            assert!(
                normalize_f64(w[0]) <= normalize_f64(w[1]),
                "{} !<= {}",
                w[0],
                w[1]
            );
        }
        assert!(normalize_f64(f64::NAN) > normalize_f64(f64::INFINITY));
    }

    proptest! {
        #[test]
        fn single_dim_is_monotone(a in any::<i64>(), b in any::<i64>()) {
            let za = zvalue(&[normalize_i64(a)]);
            let zb = zvalue(&[normalize_i64(b)]);
            prop_assert_eq!(a.cmp(&b), za.cmp(&zb));
        }

        #[test]
        fn dominance_is_preserved(
            a1 in any::<u32>(), a2 in any::<u32>(),
            d1 in 1u32..1000, d2 in 1u32..1000,
        ) {
            // If point B dominates point A in every dimension, zB > zA.
            let a = [(a1 as u64) << 32, (a2 as u64) << 32];
            let b = [((a1 + d1) as u64) << 32, ((a2 + d2) as u64) << 32];
            prop_assert!(zvalue(&b) > zvalue(&a));
        }
    }
}
