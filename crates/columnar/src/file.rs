//! The columnar file format: writer, reader, and footer metadata.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! "PCF1"                      magic
//! <column chunks>             encoded chunk payloads, back to back
//! <footer>                    schema + row-group directory + stats
//! footer_len: u32
//! "PCF1"                      trailing magic
//! ```
//!
//! Files are **immutable**: the writer produces a complete byte buffer in
//! one shot and nothing ever modifies it — matching the paper's LST
//! invariant that data files are write-once (§2.1). Row groups are the
//! split points used to map a large file onto multiple data cells (§2.3).

use crate::encoding::{self, get_uvarint, put_uvarint};
use crate::{
    Bitmap, ColumnStats, ColumnVector, ColumnarError, ColumnarResult, DataType, Field, RecordBatch,
    Schema, Value,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"PCF1";

/// Physical encoding of one column chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Encoding {
    DeltaI64 = 0,
    RleI64 = 1,
    PlainF64 = 2,
    PlainStr = 3,
    DictStr = 4,
    PackedBool = 5,
}

impl Encoding {
    fn from_u8(v: u8) -> ColumnarResult<Self> {
        Ok(match v {
            0 => Encoding::DeltaI64,
            1 => Encoding::RleI64,
            2 => Encoding::PlainF64,
            3 => Encoding::PlainStr,
            4 => Encoding::DictStr,
            5 => Encoding::PackedBool,
            other => return Err(ColumnarError::corrupt(format!("unknown encoding {other}"))),
        })
    }
}

/// Footer metadata for one column chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnChunkMeta {
    /// Byte offset of the chunk payload within the file.
    pub offset: u64,
    /// Payload length in bytes.
    pub length: u64,
    /// Statistics over the chunk.
    pub stats: ColumnStats,
    encoding: u8,
}

/// Footer metadata for one row group.
#[derive(Debug, Clone, PartialEq)]
pub struct RowGroupMeta {
    /// Rows in this group.
    pub rows: u64,
    /// One chunk per schema column, in schema order.
    pub chunks: Vec<ColumnChunkMeta>,
}

/// Writer configuration.
#[derive(Debug, Clone, Copy)]
pub struct WriterOptions {
    /// Maximum rows per row group.
    pub row_group_rows: usize,
    /// Use dictionary encoding when `distinct/total` is below this ratio.
    pub dict_ratio: f64,
    /// Use RLE when `runs/total` is below this ratio.
    pub rle_ratio: f64,
}

impl Default for WriterOptions {
    fn default() -> Self {
        WriterOptions {
            row_group_rows: 64 * 1024,
            dict_ratio: 0.5,
            rle_ratio: 0.5,
        }
    }
}

/// Streaming writer: feed batches, then [`finish`](ColumnarWriter::finish)
/// to obtain the immutable file bytes.
///
/// ```
/// use polaris_columnar::{
///     ColumnarFile, ColumnarWriter, DataType, Field, RecordBatch, Schema, Value,
///     WriterOptions,
/// };
///
/// let schema = Schema::new(vec![Field::new("id", DataType::Int64)]);
/// let batch =
///     RecordBatch::from_rows(schema, &[vec![Value::Int(1)], vec![Value::Int(2)]]).unwrap();
/// let bytes = ColumnarWriter::encode_file(&batch, WriterOptions::default()).unwrap();
/// let file = ColumnarFile::parse(bytes).unwrap();
/// assert_eq!(file.num_rows(), 2);
/// assert_eq!(file.read_all().unwrap(), batch);
/// ```
pub struct ColumnarWriter {
    schema: Schema,
    options: WriterOptions,
    /// Pending rows not yet flushed into a row group.
    pending: Vec<ColumnVector>,
    pending_rows: usize,
    body: BytesMut,
    groups: Vec<RowGroupMeta>,
}

impl ColumnarWriter {
    /// Start a new file with the given schema.
    pub fn new(schema: Schema, options: WriterOptions) -> Self {
        let pending = schema
            .fields()
            .iter()
            .map(|f| ColumnVector::empty(f.data_type))
            .collect();
        let mut body = BytesMut::new();
        body.put_slice(MAGIC);
        ColumnarWriter {
            schema,
            options,
            pending,
            pending_rows: 0,
            body,
            groups: Vec::new(),
        }
    }

    /// Append a batch (must match the file schema).
    pub fn write_batch(&mut self, batch: &RecordBatch) -> ColumnarResult<()> {
        if batch.schema() != &self.schema {
            return Err(ColumnarError::corrupt(
                "batch schema differs from file schema",
            ));
        }
        for (acc, col) in self.pending.iter_mut().zip(batch.columns()) {
            acc.append(col)?;
        }
        self.pending_rows += batch.num_rows();
        while self.pending_rows >= self.options.row_group_rows {
            self.flush_group(self.options.row_group_rows)?;
        }
        Ok(())
    }

    fn flush_group(&mut self, take_rows: usize) -> ColumnarResult<()> {
        let indices: Vec<usize> = (0..take_rows).collect();
        let rest: Vec<usize> = (take_rows..self.pending_rows).collect();
        let mut chunks = Vec::with_capacity(self.schema.len());
        let pending = std::mem::take(&mut self.pending);
        let mut remaining = Vec::with_capacity(self.schema.len());
        for col in &pending {
            let group_col = col.take(&indices);
            remaining.push(col.take(&rest));
            chunks.push(self.encode_chunk(&group_col)?);
        }
        self.pending = remaining;
        self.pending_rows -= take_rows;
        self.groups.push(RowGroupMeta {
            rows: take_rows as u64,
            chunks,
        });
        Ok(())
    }

    fn encode_chunk(&mut self, col: &ColumnVector) -> ColumnarResult<ColumnChunkMeta> {
        let offset = self.body.len() as u64;
        let stats = ColumnStats::from_vector(col);
        let mut payload = BytesMut::new();
        // Validity prefix: 0 = all valid, 1 = bitmap follows.
        match col.validity() {
            None => payload.put_u8(0),
            Some(v) => {
                payload.put_u8(1);
                let raw = v.to_bytes();
                put_uvarint(&mut payload, raw.len() as u64);
                payload.put_slice(&raw);
            }
        }
        let encoding = match col {
            ColumnVector::Int64 { values, .. } => self.encode_i64(values, &mut payload),
            ColumnVector::Date32 { values, .. } => {
                let widened: Vec<i64> = values.iter().map(|&v| v as i64).collect();
                self.encode_i64(&widened, &mut payload)
            }
            ColumnVector::Float64 { values, .. } => {
                encoding::encode_plain_f64(values, &mut payload);
                Encoding::PlainF64
            }
            ColumnVector::Utf8 { values, .. } => {
                let distinct = encoding::distinct_count_str(values);
                if !values.is_empty()
                    && (distinct as f64) < self.options.dict_ratio * values.len() as f64
                {
                    encoding::encode_dict_str(values, &mut payload);
                    Encoding::DictStr
                } else {
                    encoding::encode_plain_str(values, &mut payload);
                    Encoding::PlainStr
                }
            }
            ColumnVector::Bool { values, .. } => {
                encoding::encode_bool(values, &mut payload);
                Encoding::PackedBool
            }
        };
        self.body.put_slice(&payload);
        Ok(ColumnChunkMeta {
            offset,
            length: payload.len() as u64,
            stats,
            encoding: encoding as u8,
        })
    }

    fn encode_i64(&self, values: &[i64], payload: &mut BytesMut) -> Encoding {
        let runs = encoding::run_count_i64(values);
        if !values.is_empty() && (runs as f64) < self.options.rle_ratio * values.len() as f64 {
            encoding::encode_rle_i64(values, payload);
            Encoding::RleI64
        } else {
            encoding::encode_delta_i64(values, payload);
            Encoding::DeltaI64
        }
    }

    /// Flush pending rows and produce the final immutable file bytes.
    pub fn finish(mut self) -> ColumnarResult<Bytes> {
        if self.pending_rows > 0 {
            self.flush_group(self.pending_rows)?;
        }
        let footer_start = self.body.len();
        let mut body = self.body;
        write_footer(&mut body, &self.schema, &self.groups);
        let footer_len = (body.len() - footer_start) as u32;
        body.put_u32_le(footer_len);
        body.put_slice(MAGIC);
        Ok(body.freeze())
    }

    /// Convenience: encode a single batch as a complete file.
    pub fn encode_file(batch: &RecordBatch, options: WriterOptions) -> ColumnarResult<Bytes> {
        let mut w = ColumnarWriter::new(batch.schema().clone(), options);
        w.write_batch(batch)?;
        w.finish()
    }
}

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Int(x) => {
            buf.put_u8(1);
            put_uvarint(buf, encoding::zigzag(*x));
        }
        Value::Float(x) => {
            buf.put_u8(2);
            buf.put_f64_le(*x);
        }
        Value::Str(x) => {
            buf.put_u8(3);
            put_uvarint(buf, x.len() as u64);
            buf.put_slice(x.as_bytes());
        }
        Value::Bool(x) => {
            buf.put_u8(4);
            buf.put_u8(*x as u8);
        }
        Value::Date(x) => {
            buf.put_u8(5);
            put_uvarint(buf, encoding::zigzag(*x as i64));
        }
    }
}

fn get_value(buf: &mut Bytes) -> ColumnarResult<Value> {
    if !buf.has_remaining() {
        return Err(ColumnarError::corrupt("truncated value"));
    }
    Ok(match buf.get_u8() {
        0 => Value::Null,
        1 => Value::Int(encoding::unzigzag(get_uvarint(buf)?)),
        2 => {
            if buf.remaining() < 8 {
                return Err(ColumnarError::corrupt("truncated float value"));
            }
            Value::Float(buf.get_f64_le())
        }
        3 => {
            let len = get_uvarint(buf)? as usize;
            if buf.remaining() < len {
                return Err(ColumnarError::corrupt("truncated string value"));
            }
            let raw = buf.split_to(len);
            Value::Str(
                std::str::from_utf8(&raw)
                    .map_err(|_| ColumnarError::corrupt("invalid UTF-8 value"))?
                    .to_owned(),
            )
        }
        4 => {
            if !buf.has_remaining() {
                return Err(ColumnarError::corrupt("truncated bool value"));
            }
            Value::Bool(buf.get_u8() != 0)
        }
        5 => Value::Date(encoding::unzigzag(get_uvarint(buf)?) as i32),
        other => return Err(ColumnarError::corrupt(format!("unknown value tag {other}"))),
    })
}

fn dtype_to_u8(dt: DataType) -> u8 {
    match dt {
        DataType::Int64 => 0,
        DataType::Float64 => 1,
        DataType::Utf8 => 2,
        DataType::Bool => 3,
        DataType::Date32 => 4,
    }
}

fn dtype_from_u8(v: u8) -> ColumnarResult<DataType> {
    Ok(match v {
        0 => DataType::Int64,
        1 => DataType::Float64,
        2 => DataType::Utf8,
        3 => DataType::Bool,
        4 => DataType::Date32,
        other => return Err(ColumnarError::corrupt(format!("unknown data type {other}"))),
    })
}

fn write_footer(buf: &mut BytesMut, schema: &Schema, groups: &[RowGroupMeta]) {
    put_uvarint(buf, schema.len() as u64);
    for f in schema.fields() {
        put_uvarint(buf, f.name.len() as u64);
        buf.put_slice(f.name.as_bytes());
        buf.put_u8(dtype_to_u8(f.data_type));
        buf.put_u8(f.nullable as u8);
    }
    put_uvarint(buf, groups.len() as u64);
    for g in groups {
        put_uvarint(buf, g.rows);
        for c in &g.chunks {
            put_uvarint(buf, c.offset);
            put_uvarint(buf, c.length);
            buf.put_u8(c.encoding);
            put_uvarint(buf, c.stats.null_count);
            put_uvarint(buf, c.stats.row_count);
            put_value(buf, c.stats.min.as_ref().unwrap_or(&Value::Null));
            put_value(buf, c.stats.max.as_ref().unwrap_or(&Value::Null));
        }
    }
}

fn read_footer(mut buf: Bytes) -> ColumnarResult<(Schema, Vec<RowGroupMeta>)> {
    let n_fields = get_uvarint(&mut buf)? as usize;
    let mut fields = Vec::with_capacity(n_fields.min(1 << 16));
    for _ in 0..n_fields {
        let len = get_uvarint(&mut buf)? as usize;
        if buf.remaining() < len + 2 {
            return Err(ColumnarError::corrupt("truncated footer field"));
        }
        let raw = buf.split_to(len);
        let name = std::str::from_utf8(&raw)
            .map_err(|_| ColumnarError::corrupt("invalid UTF-8 field name"))?
            .to_owned();
        let data_type = dtype_from_u8(buf.get_u8())?;
        let nullable = buf.get_u8() != 0;
        fields.push(Field {
            name,
            data_type,
            nullable,
        });
    }
    let schema = Schema::new(fields);
    let n_groups = get_uvarint(&mut buf)? as usize;
    let mut groups = Vec::with_capacity(n_groups.min(1 << 16));
    for _ in 0..n_groups {
        let rows = get_uvarint(&mut buf)?;
        let mut chunks = Vec::with_capacity(schema.len());
        for _ in 0..schema.len() {
            let offset = get_uvarint(&mut buf)?;
            let length = get_uvarint(&mut buf)?;
            let enc = if buf.has_remaining() {
                buf.get_u8()
            } else {
                return Err(ColumnarError::corrupt("truncated chunk meta"));
            };
            let null_count = get_uvarint(&mut buf)?;
            let row_count = get_uvarint(&mut buf)?;
            let min = match get_value(&mut buf)? {
                Value::Null => None,
                v => Some(v),
            };
            let max = match get_value(&mut buf)? {
                Value::Null => None,
                v => Some(v),
            };
            chunks.push(ColumnChunkMeta {
                offset,
                length,
                encoding: enc,
                stats: ColumnStats {
                    min,
                    max,
                    null_count,
                    row_count,
                },
            });
        }
        groups.push(RowGroupMeta { rows, chunks });
    }
    Ok((schema, groups))
}

/// Footer metadata of a columnar file, parsed without the chunk payloads.
///
/// Enables *lazy* reading over remote storage: fetch the tail of the file
/// (footer + trailing length + magic), prune row groups on statistics, and
/// range-read only the chunk payloads a query actually needs — the access
/// pattern real Parquet readers use against object stores.
#[derive(Debug, Clone)]
pub struct ColumnarFooter {
    schema: Schema,
    groups: Vec<RowGroupMeta>,
    /// Total file length (needed to validate chunk ranges).
    file_len: u64,
}

impl ColumnarFooter {
    /// Bytes from the end of the file that are guaranteed to contain the
    /// trailing `footer_len` + magic; fetch at least this much tail first.
    pub const TAIL_PROBE: u64 = 8;

    /// Footer length recorded in the 8-byte tail (`footer_len` + magic).
    pub fn footer_len_from_tail(tail8: &[u8]) -> ColumnarResult<u64> {
        if tail8.len() != 8 || &tail8[4..] != MAGIC {
            return Err(ColumnarError::corrupt("bad trailing magic"));
        }
        Ok(u32::from_le_bytes(tail8[..4].try_into().expect("4 bytes")) as u64)
    }

    /// Parse a footer from the final `footer_len + 8` bytes of a file of
    /// total length `file_len`.
    pub fn parse_tail(tail: Bytes, file_len: u64) -> ColumnarResult<Self> {
        if (tail.len() as u64) < 8 || tail.len() as u64 > file_len {
            return Err(ColumnarError::corrupt("footer tail too short"));
        }
        let n = tail.len();
        if &tail[n - 4..] != MAGIC {
            return Err(ColumnarError::corrupt("bad trailing magic"));
        }
        let footer = tail.slice(..n - 8);
        let (schema, groups) = read_footer(footer)?;
        Ok(ColumnarFooter {
            schema,
            groups,
            file_len,
        })
    }

    /// The file schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Row-group directory.
    pub fn row_groups(&self) -> &[RowGroupMeta] {
        &self.groups
    }

    /// Total rows across all row groups.
    pub fn num_rows(&self) -> u64 {
        self.groups.iter().map(|g| g.rows).sum()
    }

    /// Byte range of one column chunk — the exact range a lazy reader
    /// hands to `ObjectStore::get_range` before
    /// [`decode_chunk_payload`](ColumnarFooter::decode_chunk_payload).
    pub fn chunk_range(&self, group: usize, col: usize) -> ColumnarResult<std::ops::Range<u64>> {
        let g = self
            .groups
            .get(group)
            .ok_or_else(|| ColumnarError::corrupt(format!("row group {group} out of range")))?;
        let c = g
            .chunks
            .get(col)
            .ok_or_else(|| ColumnarError::corrupt(format!("column {col} out of range")))?;
        if c.offset + c.length > self.file_len {
            return Err(ColumnarError::corrupt("chunk extends past end of file"));
        }
        Ok(c.offset..c.offset + c.length)
    }

    /// Payload bytes a scan of `cols` would fetch for one row group —
    /// the scheduling weight of a row-group-aligned morsel.
    pub fn group_chunk_bytes(&self, group: usize, cols: &[usize]) -> u64 {
        self.groups
            .get(group)
            .map(|g| {
                cols.iter()
                    .filter_map(|&c| g.chunks.get(c))
                    .map(|c| c.length)
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Decode one column chunk from its raw payload bytes (as fetched by a
    /// range read of `[chunk.offset, chunk.offset + chunk.length)`).
    pub fn decode_chunk_payload(
        &self,
        field: &Field,
        chunk: &ColumnChunkMeta,
        payload: Bytes,
        rows: usize,
    ) -> ColumnarResult<ColumnVector> {
        if chunk.offset + chunk.length > self.file_len {
            return Err(ColumnarError::corrupt("chunk extends past end of file"));
        }
        if payload.len() as u64 != chunk.length {
            return Err(ColumnarError::LengthMismatch {
                expected: chunk.length as usize,
                found: payload.len(),
            });
        }
        decode_chunk_payload(field, chunk.encoding, payload, rows)
    }
}

/// A parsed, immutable columnar file.
///
/// Parsing reads only the footer; row groups decode lazily on demand so a
/// scan that prunes on stats never touches pruned chunk bytes.
#[derive(Debug, Clone)]
pub struct ColumnarFile {
    data: Bytes,
    schema: Schema,
    groups: Vec<RowGroupMeta>,
    footer_len: usize,
}

impl ColumnarFile {
    /// Parse file bytes (footer only).
    pub fn parse(data: Bytes) -> ColumnarResult<Self> {
        let n = data.len();
        if n < 12 || &data[..4] != MAGIC || &data[n - 4..] != MAGIC {
            return Err(ColumnarError::corrupt("bad file magic"));
        }
        let footer_len =
            u32::from_le_bytes(data[n - 8..n - 4].try_into().expect("4 bytes")) as usize;
        if footer_len + 12 > n {
            return Err(ColumnarError::corrupt("footer length out of range"));
        }
        let footer = data.slice(n - 8 - footer_len..n - 8);
        let (schema, groups) = read_footer(footer)?;
        Ok(ColumnarFile {
            data,
            schema,
            groups,
            footer_len,
        })
    }

    /// Metadata bytes a lazy reader transfers to learn this file's layout:
    /// the 8-byte tail probe plus the footer tail (`footer_len + 8`).
    /// Eager scans charge this to `ScanMeter::bytes_read` so eager and
    /// lazy byte accounting stay comparable.
    pub fn footer_overhead_bytes(&self) -> u64 {
        self.footer_len as u64 + 16
    }

    /// The file schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total rows across all row groups.
    pub fn num_rows(&self) -> u64 {
        self.groups.iter().map(|g| g.rows).sum()
    }

    /// Row-group directory.
    pub fn row_groups(&self) -> &[RowGroupMeta] {
        &self.groups
    }

    /// Merged file-level stats for the named column.
    pub fn column_stats(&self, name: &str) -> ColumnarResult<ColumnStats> {
        let idx = self.schema.index_of(name)?;
        let mut acc = ColumnStats::default();
        for g in &self.groups {
            acc.merge(&g.chunks[idx].stats);
        }
        Ok(acc)
    }

    /// Decode one row group into a batch.
    pub fn read_row_group(&self, group: usize) -> ColumnarResult<RecordBatch> {
        let g = self
            .groups
            .get(group)
            .ok_or_else(|| ColumnarError::corrupt(format!("row group {group} out of range")))?;
        let mut columns = Vec::with_capacity(self.schema.len());
        for (field, chunk) in self.schema.fields().iter().zip(&g.chunks) {
            columns.push(self.decode_chunk(field, chunk, g.rows as usize)?);
        }
        RecordBatch::new(self.schema.clone(), columns)
    }

    /// Decode the entire file into one batch.
    pub fn read_all(&self) -> ColumnarResult<RecordBatch> {
        if self.groups.is_empty() {
            return Ok(RecordBatch::empty(self.schema.clone()));
        }
        let batches = (0..self.groups.len())
            .map(|i| self.read_row_group(i))
            .collect::<ColumnarResult<Vec<_>>>()?;
        RecordBatch::concat(&batches)
    }

    fn decode_chunk(
        &self,
        field: &Field,
        chunk: &ColumnChunkMeta,
        rows: usize,
    ) -> ColumnarResult<ColumnVector> {
        let start = chunk.offset as usize;
        let end = start + chunk.length as usize;
        if end > self.data.len() {
            return Err(ColumnarError::corrupt("chunk extends past end of file"));
        }
        decode_chunk_payload(field, chunk.encoding, self.data.slice(start..end), rows)
    }
}

/// Decode a column chunk payload (validity prefix + encoded values).
fn decode_chunk_payload(
    field: &Field,
    encoding: u8,
    mut buf: Bytes,
    rows: usize,
) -> ColumnarResult<ColumnVector> {
    if !buf.has_remaining() {
        return Err(ColumnarError::corrupt("empty chunk"));
    }
    let validity = match buf.get_u8() {
        0 => None,
        1 => {
            let len = get_uvarint(&mut buf)? as usize;
            if buf.remaining() < len {
                return Err(ColumnarError::corrupt("truncated validity bitmap"));
            }
            Some(Bitmap::from_bytes(buf.split_to(len))?)
        }
        other => return Err(ColumnarError::corrupt(format!("bad validity flag {other}"))),
    };
    let enc = Encoding::from_u8(encoding)?;
    let vector = match (field.data_type, enc) {
        (DataType::Int64, Encoding::DeltaI64) => ColumnVector::Int64 {
            values: encoding::decode_delta_i64(&mut buf)?,
            validity,
        },
        (DataType::Int64, Encoding::RleI64) => ColumnVector::Int64 {
            values: encoding::decode_rle_i64(&mut buf)?,
            validity,
        },
        (DataType::Date32, Encoding::DeltaI64) => ColumnVector::Date32 {
            values: encoding::decode_delta_i64(&mut buf)?
                .into_iter()
                .map(|v| v as i32)
                .collect(),
            validity,
        },
        (DataType::Date32, Encoding::RleI64) => ColumnVector::Date32 {
            values: encoding::decode_rle_i64(&mut buf)?
                .into_iter()
                .map(|v| v as i32)
                .collect(),
            validity,
        },
        (DataType::Float64, Encoding::PlainF64) => ColumnVector::Float64 {
            values: encoding::decode_plain_f64(&mut buf)?,
            validity,
        },
        (DataType::Utf8, Encoding::PlainStr) => ColumnVector::Utf8 {
            values: encoding::decode_plain_str(&mut buf)?,
            validity,
        },
        (DataType::Utf8, Encoding::DictStr) => ColumnVector::Utf8 {
            values: encoding::decode_dict_str(&mut buf)?,
            validity,
        },
        (DataType::Bool, Encoding::PackedBool) => ColumnVector::Bool {
            values: encoding::decode_bool(&mut buf)?,
            validity,
        },
        (dt, enc) => {
            return Err(ColumnarError::corrupt(format!(
                "encoding {enc:?} invalid for type {dt}"
            )))
        }
    };
    if vector.len() != rows {
        return Err(ColumnarError::LengthMismatch {
            expected: rows,
            found: vector.len(),
        });
    }
    Ok(vector)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn test_schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("price", DataType::Float64),
            Field::nullable("flag", DataType::Utf8),
            Field::new("ok", DataType::Bool),
            Field::new("day", DataType::Date32),
        ])
    }

    fn test_batch(n: usize) -> RecordBatch {
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| {
                vec![
                    Value::Int(i as i64),
                    Value::Float(i as f64 * 1.5),
                    if i % 7 == 0 {
                        Value::Null
                    } else {
                        Value::Str(format!("f{}", i % 3))
                    },
                    Value::Bool(i % 2 == 0),
                    Value::Date((i / 10) as i32),
                ]
            })
            .collect();
        RecordBatch::from_rows(test_schema(), &rows).unwrap()
    }

    #[test]
    fn round_trip_single_group() {
        let batch = test_batch(100);
        let bytes = ColumnarWriter::encode_file(&batch, WriterOptions::default()).unwrap();
        let file = ColumnarFile::parse(bytes).unwrap();
        assert_eq!(file.num_rows(), 100);
        assert_eq!(file.row_groups().len(), 1);
        assert_eq!(file.read_all().unwrap(), batch);
    }

    #[test]
    fn round_trip_multiple_groups() {
        let batch = test_batch(1000);
        let opts = WriterOptions {
            row_group_rows: 128,
            ..Default::default()
        };
        let bytes = ColumnarWriter::encode_file(&batch, opts).unwrap();
        let file = ColumnarFile::parse(bytes).unwrap();
        assert_eq!(file.row_groups().len(), 8); // ceil(1000/128)
        assert_eq!(file.read_all().unwrap(), batch);
        // individual group reads line up
        let g0 = file.read_row_group(0).unwrap();
        assert_eq!(g0.num_rows(), 128);
        assert_eq!(g0.column(0).value(5), Value::Int(5));
        let last = file.read_row_group(7).unwrap();
        assert_eq!(last.num_rows(), 1000 - 7 * 128);
    }

    #[test]
    fn empty_file() {
        let batch = RecordBatch::empty(test_schema());
        let bytes = ColumnarWriter::encode_file(&batch, WriterOptions::default()).unwrap();
        let file = ColumnarFile::parse(bytes).unwrap();
        assert_eq!(file.num_rows(), 0);
        assert_eq!(file.read_all().unwrap().num_rows(), 0);
    }

    #[test]
    fn stats_survive_round_trip() {
        let batch = test_batch(50);
        let bytes = ColumnarWriter::encode_file(&batch, WriterOptions::default()).unwrap();
        let file = ColumnarFile::parse(bytes).unwrap();
        let id_stats = file.column_stats("id").unwrap();
        assert_eq!(id_stats.min, Some(Value::Int(0)));
        assert_eq!(id_stats.max, Some(Value::Int(49)));
        assert_eq!(id_stats.row_count, 50);
        let flag_stats = file.column_stats("flag").unwrap();
        assert_eq!(flag_stats.null_count, 8); // i % 7 == 0 for i in 0..50
    }

    #[test]
    fn multi_batch_write() {
        let mut w = ColumnarWriter::new(test_schema(), WriterOptions::default());
        w.write_batch(&test_batch(30)).unwrap();
        w.write_batch(&test_batch(20)).unwrap();
        let file = ColumnarFile::parse(w.finish().unwrap()).unwrap();
        assert_eq!(file.num_rows(), 50);
    }

    #[test]
    fn schema_mismatch_rejected() {
        let mut w = ColumnarWriter::new(test_schema(), WriterOptions::default());
        let other = RecordBatch::empty(Schema::new(vec![Field::new("x", DataType::Int64)]));
        assert!(w.write_batch(&other).is_err());
    }

    #[test]
    fn corrupt_files_rejected() {
        assert!(ColumnarFile::parse(Bytes::from_static(b"nope")).is_err());
        assert!(ColumnarFile::parse(Bytes::from_static(b"PCF1xxxxPCF1")).is_err());
        let good = ColumnarWriter::encode_file(&test_batch(10), WriterOptions::default()).unwrap();
        // flip a footer-length byte
        let mut bad = good.to_vec();
        let n = bad.len();
        bad[n - 8] ^= 0xff;
        assert!(ColumnarFile::parse(Bytes::from(bad)).is_err());
        // truncate
        assert!(ColumnarFile::parse(good.slice(..good.len() / 2)).is_err());
    }

    #[test]
    fn row_group_out_of_range() {
        let bytes = ColumnarWriter::encode_file(&test_batch(10), WriterOptions::default()).unwrap();
        let file = ColumnarFile::parse(bytes).unwrap();
        assert!(file.read_row_group(1).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn arbitrary_round_trip(
            ints in proptest::collection::vec(any::<i64>(), 1..200),
            group_rows in 1usize..64,
        ) {
            let schema = Schema::new(vec![
                Field::new("v", DataType::Int64),
            ]);
            let rows: Vec<Vec<Value>> = ints.iter().map(|&i| vec![Value::Int(i)]).collect();
            let batch = RecordBatch::from_rows(schema, &rows).unwrap();
            let opts = WriterOptions { row_group_rows: group_rows, ..Default::default() };
            let bytes = ColumnarWriter::encode_file(&batch, opts).unwrap();
            let file = ColumnarFile::parse(bytes).unwrap();
            prop_assert_eq!(file.read_all().unwrap(), batch);
        }

        #[test]
        fn nullable_strings_round_trip(
            strs in proptest::collection::vec(proptest::option::of(".{0,12}"), 0..100),
        ) {
            let schema = Schema::new(vec![Field::nullable("s", DataType::Utf8)]);
            let rows: Vec<Vec<Value>> = strs
                .iter()
                .map(|o| vec![o.clone().map_or(Value::Null, Value::Str)])
                .collect();
            let batch = RecordBatch::from_rows(schema, &rows).unwrap();
            let bytes = ColumnarWriter::encode_file(&batch, WriterOptions::default()).unwrap();
            let file = ColumnarFile::parse(bytes).unwrap();
            prop_assert_eq!(file.read_all().unwrap(), batch);
        }
    }
}
