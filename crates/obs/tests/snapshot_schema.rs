//! Golden schema test: the JSON shapes of [`MetricsSnapshot`] and
//! [`TimeSeriesSnapshot`] are consumed by external tooling (the bench
//! artifact diffs, dashboards scraping `/health`, the fig12 `--telemetry`
//! self-scrape), so drift must fail loudly. The exports are deserialized
//! twice: back into the real types (round-trip), and into independently
//! declared mirror structs that pin the field names and types a consumer
//! would write against.

use polaris_obs::{Harvester, MetricsRegistry, MetricsSnapshot, TimeSeriesSnapshot, HIST_BUCKETS};
use serde::Deserialize;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// The histogram shape a consumer depends on.
#[derive(Debug, Default, Deserialize)]
#[serde(default)]
struct HistogramSchema {
    count: u64,
    sum_ns: u64,
    p50_ns: u64,
    p95_ns: u64,
    p99_ns: u64,
    buckets: Vec<u64>,
}

/// The metrics-snapshot shape a consumer depends on.
#[derive(Debug, Default, Deserialize)]
#[serde(default)]
struct MetricsSchema {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, HistogramSchema>,
}

/// One rate/gauge point of the time-series export.
#[derive(Debug, Default, Deserialize)]
#[serde(default)]
struct PointSchema {
    t_ms: u64,
    value: f64,
}

/// One per-tick quantile point of the time-series export.
#[derive(Debug, Default, Deserialize)]
#[serde(default)]
struct QuantileSchema {
    t_ms: u64,
    count: u64,
    p50_ns: u64,
    p95_ns: u64,
    p99_ns: u64,
}

/// The time-series export shape a consumer depends on.
#[derive(Debug, Default, Deserialize)]
#[serde(default)]
struct TimeSeriesSchema {
    tick_ms: u64,
    ticks: u64,
    rates: BTreeMap<String, Vec<PointSchema>>,
    gauges: BTreeMap<String, Vec<PointSchema>>,
    quantiles: BTreeMap<String, Vec<QuantileSchema>>,
}

/// A registry with one metric of each kind and known values.
fn seeded_registry() -> Arc<MetricsRegistry> {
    let registry = MetricsRegistry::new();
    registry.counter("catalog.commits").add(42);
    registry.gauge("dcp.lanes.write_busy").set(3);
    let h = registry.histogram("catalog.commit_latency_ns");
    h.record_ns(900); // bucket 0 (< 1000)
    h.record_ns(1_500); // bucket 1 (< 2000)
    h.record_ns(1_500_000);
    registry
}

#[test]
fn metrics_snapshot_round_trips_through_json() {
    let snap = seeded_registry().snapshot();
    let json = snap.to_json_pretty();
    let back: MetricsSnapshot = serde_json::from_str(&json).expect("round-trip parse");
    assert_eq!(back.counter("catalog.commits"), 42);
    assert_eq!(back.gauges["dcp.lanes.write_busy"], 3);
    let hist = &back.histograms["catalog.commit_latency_ns"];
    assert_eq!(hist.count, 3);
    assert_eq!(
        hist.sum_ns,
        snap.histograms["catalog.commit_latency_ns"].sum_ns
    );
    assert_eq!(
        hist.buckets,
        snap.histograms["catalog.commit_latency_ns"].buckets
    );
}

#[test]
fn metrics_snapshot_matches_consumer_schema() {
    let json = seeded_registry().snapshot().to_json_pretty();
    let schema: MetricsSchema = serde_json::from_str(&json).expect("schema parse");
    assert_eq!(schema.counters["catalog.commits"], 42);
    assert_eq!(schema.gauges["dcp.lanes.write_busy"], 3);
    let hist = &schema.histograms["catalog.commit_latency_ns"];
    assert_eq!(hist.count, 3);
    assert_eq!(hist.sum_ns, 900 + 1_500 + 1_500_000);
    assert_eq!(
        hist.buckets.len(),
        HIST_BUCKETS,
        "bucket vector must expose every bucket, including overflow"
    );
    assert_eq!(hist.buckets.iter().sum::<u64>(), hist.count);
    assert!(hist.p50_ns <= hist.p95_ns && hist.p95_ns <= hist.p99_ns);
}

#[test]
fn time_series_snapshot_round_trips_through_json() {
    let registry = seeded_registry();
    let harvester = Harvester::detached(Arc::clone(&registry), Duration::from_millis(100), 8);
    harvester.run_once();
    registry.counter("catalog.commits").add(8);
    harvester.run_once();
    let series = harvester.time_series();
    let json = series.to_json_pretty();
    let back: TimeSeriesSnapshot = serde_json::from_str(&json).expect("round-trip parse");
    assert_eq!(back.tick_ms, 100);
    assert_eq!(back.ticks, 2);
    let rates = &back.rates["catalog.commits"];
    assert_eq!(rates.len(), 2);
    // 8 more commits over a 0.1 s tick = 80/s on the second sample.
    assert!((rates[1].value - 80.0).abs() < 1e-9);
}

#[test]
fn time_series_snapshot_matches_consumer_schema() {
    let registry = seeded_registry();
    let harvester = Harvester::detached(Arc::clone(&registry), Duration::from_millis(50), 4);
    harvester.run_once();
    harvester.run_once();
    let json = harvester.time_series().to_json_pretty();
    let schema: TimeSeriesSchema = serde_json::from_str(&json).expect("schema parse");
    assert_eq!(schema.tick_ms, 50);
    assert_eq!(schema.ticks, 2);
    assert_eq!(schema.rates["catalog.commits"].len(), 2);
    assert_eq!(schema.gauges["dcp.lanes.write_busy"].len(), 2);
    // The gauge level survives as a float sample.
    assert!(schema.gauges["dcp.lanes.write_busy"]
        .iter()
        .all(|p| (p.value - 3.0).abs() < 1e-9));
    let q = &schema.quantiles["catalog.commit_latency_ns"];
    assert_eq!(q.len(), 2);
    // All three samples arrived before tick 1; tick 2 saw nothing.
    assert_eq!(q[0].count, 3);
    assert_eq!(q[1].count, 0);
    assert!(q[0].p50_ns <= q[0].p95_ns && q[0].p95_ns <= q[0].p99_ns);
    // Points carry monotone timestamps, consistent across series.
    let t: Vec<u64> = schema.rates["catalog.commits"]
        .iter()
        .map(|p| p.t_ms)
        .collect();
    assert!(t.windows(2).all(|w| w[0] <= w[1]));
    assert!(q.iter().map(|p| p.t_ms).eq(t.iter().copied()));
}
