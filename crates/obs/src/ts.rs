//! Continuous time-series harvesting over a [`MetricsRegistry`].
//!
//! `metrics_snapshot()` is pull-on-demand: it tells you *where the engine
//! is*, never *how fast it is moving* or *whether it has stopped*. The
//! [`Harvester`] closes that gap — a background thread samples the
//! registry on a fixed tick and folds each sample into bounded per-metric
//! rings:
//!
//! * **counters** become derived rates (delta / tick seconds),
//! * **gauges** are sampled as-is,
//! * **histograms** keep per-tick delta quantiles: the bucket counts that
//!   arrived *during the tick* run through
//!   [`quantile_from_counts`](crate::quantile_from_counts), so a
//!   latency regression shows up in the tick it happens instead of being
//!   averaged into the lifetime distribution.
//!
//! The rings are fixed-size (`window` ticks), so memory is bounded no
//! matter how long the engine runs. [`Harvester::time_series`] exports a
//! serializable [`TimeSeriesSnapshot`]; an attached
//! [`Watchdog`](crate::health::Watchdog) is evaluated on the same tick so
//! stall rules observe exactly the cadence the rings record.
//!
//! # Zero allocation at steady state
//!
//! Sampling must itself pass the allocation gate: an idle engine whose
//! only activity is the harvester should allocate nothing per tick. The
//! sampler therefore never calls [`MetricsRegistry::snapshot`] (which
//! clones every metric name). It caches cloned handle cells per metric
//! and re-indexes only when [`MetricsRegistry::epoch`] moves (a new
//! metric was registered); steady-state ticks read through the cached
//! handles into pre-sized rings and stack-array histogram deltas. The
//! tick also syncs the [`crate::alloc`] attribution counters and samples
//! process RSS (`process.resident_bytes`), both allocation-free, under a
//! `telemetry` [`crate::AllocScope`] so any residual churn is attributed
//! to the telemetry plane itself.

use crate::alloc::{AllocMetrics, AllocPhase, AllocScope};
use crate::health::Watchdog;
use crate::{quantile_from_counts, Counter, Gauge, Histogram, MetricsRegistry, HIST_BUCKETS};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One sampled point of a rate or gauge series.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TsPoint {
    /// Milliseconds since the harvester started.
    pub t_ms: u64,
    /// Counter rate (events/second over the tick) or gauge level.
    pub value: f64,
}

/// One per-tick quantile sample of a histogram series. Quantiles are
/// computed over the samples that arrived during this tick only.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct QuantilePoint {
    /// Milliseconds since the harvester started.
    pub t_ms: u64,
    /// Samples recorded during this tick.
    pub count: u64,
    /// Approximate median of this tick's samples, ns.
    pub p50_ns: u64,
    /// Approximate 95th percentile of this tick's samples, ns.
    pub p95_ns: u64,
    /// Approximate 99th percentile of this tick's samples, ns.
    pub p99_ns: u64,
}

/// Serializable export of every time-series ring, the continuous
/// counterpart of [`MetricsSnapshot`]. Keys are registry metric names.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TimeSeriesSnapshot {
    /// Harvester tick length in milliseconds.
    pub tick_ms: u64,
    /// Ticks completed since the harvester started.
    pub ticks: u64,
    /// Wall-clock time the harvester started, milliseconds since the Unix
    /// epoch. Adding a point's `t_ms` yields its absolute capture time, so
    /// ring samples line up with slow-log wall-clock timestamps.
    #[serde(default)]
    pub wall_start_ms: u64,
    /// Counter rates (events/second per tick), newest last.
    pub rates: BTreeMap<String, Vec<TsPoint>>,
    /// Gauge levels per tick, newest last.
    pub gauges: BTreeMap<String, Vec<TsPoint>>,
    /// Histogram per-tick delta quantiles, newest last.
    pub quantiles: BTreeMap<String, Vec<QuantilePoint>>,
}

impl TimeSeriesSnapshot {
    /// Pretty-printed JSON (the shape `snapshot_schema.rs` pins).
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("time-series snapshot serializes")
    }
}

fn push_bounded<T>(ring: &mut VecDeque<T>, window: usize, point: T) {
    if ring.len() == window {
        ring.pop_front();
    }
    ring.push_back(point);
}

struct CounterCell {
    name: String,
    handle: Counter,
    prev: u64,
    ring: VecDeque<TsPoint>,
}

struct GaugeCell {
    name: String,
    handle: Gauge,
    ring: VecDeque<TsPoint>,
}

struct HistCell {
    name: String,
    handle: Histogram,
    prev: [u64; HIST_BUCKETS],
    ring: VecDeque<QuantilePoint>,
}

/// Cached per-metric sampling cells. `epoch` is the registry epoch the
/// cells were indexed at; a moved epoch triggers [`Rings::reindex`]
/// (which allocates — once per registration, not per tick).
#[derive(Default)]
struct Rings {
    epoch: u64,
    indexed: bool,
    counters: Vec<CounterCell>,
    gauges: Vec<GaugeCell>,
    hists: Vec<HistCell>,
}

impl Rings {
    /// Rebuild the cell lists from the registry, preserving the ring and
    /// delta state of metrics that were already indexed.
    fn reindex(&mut self, registry: &MetricsRegistry, epoch: u64, window: usize) {
        let (counters, gauges, hists) = registry.handles();
        let mut old: BTreeMap<String, CounterCell> = self
            .counters
            .drain(..)
            .map(|c| (c.name.clone(), c))
            .collect();
        self.counters = counters
            .into_iter()
            .map(|(name, handle)| match old.remove(&name) {
                Some(mut cell) => {
                    cell.handle = handle;
                    cell
                }
                None => CounterCell {
                    name,
                    handle,
                    prev: 0,
                    ring: VecDeque::with_capacity(window),
                },
            })
            .collect();
        let mut old: BTreeMap<String, GaugeCell> =
            self.gauges.drain(..).map(|c| (c.name.clone(), c)).collect();
        self.gauges = gauges
            .into_iter()
            .map(|(name, handle)| match old.remove(&name) {
                Some(mut cell) => {
                    cell.handle = handle;
                    cell
                }
                None => GaugeCell {
                    name,
                    handle,
                    ring: VecDeque::with_capacity(window),
                },
            })
            .collect();
        let mut old: BTreeMap<String, HistCell> =
            self.hists.drain(..).map(|c| (c.name.clone(), c)).collect();
        self.hists = hists
            .into_iter()
            .map(|(name, handle)| match old.remove(&name) {
                Some(mut cell) => {
                    cell.handle = handle;
                    cell
                }
                None => HistCell {
                    name,
                    handle,
                    prev: [0; HIST_BUCKETS],
                    ring: VecDeque::with_capacity(window),
                },
            })
            .collect();
        self.epoch = epoch;
        self.indexed = true;
    }
}

struct HarvesterShared {
    registry: Arc<MetricsRegistry>,
    /// Pre-registered alloc/RSS attribution handles, synced every tick.
    alloc_metrics: AllocMetrics,
    rings: Mutex<Rings>,
    watchdog: Mutex<Option<Arc<Watchdog>>>,
    ticks: AtomicU64,
    tick: Duration,
    window: usize,
    started: Instant,
    /// Unix-epoch milliseconds captured at the same moment as `started`,
    /// so `started.elapsed()` offsets convert to absolute wall-clock time
    /// without calling the (allocating, non-monotonic) clock per tick.
    started_unix_ms: u64,
    stop: AtomicBool,
}

/// Background sampler: one named thread (`polaris-harvester`) snapshots
/// the registry every `tick` and maintains `window`-sized rings per
/// metric. Dropping (or [`Harvester::stop`]) joins the thread.
///
/// Deterministic tests and single-shot tools can skip the thread entirely:
/// [`Harvester::detached`] plus explicit [`Harvester::run_once`] calls
/// advance the rings without any timing dependence.
pub struct Harvester {
    shared: Arc<HarvesterShared>,
    handle: Option<JoinHandle<()>>,
}

impl Harvester {
    /// A harvester with no background thread; call
    /// [`Harvester::run_once`] to advance it manually.
    pub fn detached(registry: Arc<MetricsRegistry>, tick: Duration, window: usize) -> Self {
        let alloc_metrics = AllocMetrics::register(&registry);
        let started_unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        Harvester {
            shared: Arc::new(HarvesterShared {
                registry,
                alloc_metrics,
                rings: Mutex::new(Rings::default()),
                watchdog: Mutex::new(None),
                ticks: AtomicU64::new(0),
                tick,
                window: window.max(1),
                started: Instant::now(),
                started_unix_ms,
                stop: AtomicBool::new(false),
            }),
            handle: None,
        }
    }

    /// Start the background sampling thread.
    pub fn start(registry: Arc<MetricsRegistry>, tick: Duration, window: usize) -> Self {
        let mut h = Harvester::detached(registry, tick, window);
        let shared = Arc::clone(&h.shared);
        let handle = std::thread::Builder::new()
            .name("polaris-harvester".into())
            .spawn(move || {
                while !shared.stop.load(Ordering::Relaxed) {
                    HarvesterShared::run_once(&shared);
                    std::thread::sleep(shared.tick);
                }
            })
            .expect("spawn polaris-harvester thread");
        h.handle = Some(handle);
        h
    }

    /// Attach a watchdog; it is evaluated at the end of every tick
    /// (including manual [`Harvester::run_once`] calls).
    pub fn attach_watchdog(&self, watchdog: Arc<Watchdog>) {
        *self
            .shared
            .watchdog
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = Some(watchdog);
    }

    /// Run exactly one tick synchronously on the calling thread.
    pub fn run_once(&self) {
        HarvesterShared::run_once(&self.shared);
    }

    /// Ticks completed so far.
    pub fn ticks(&self) -> u64 {
        self.shared.ticks.load(Ordering::Relaxed)
    }

    /// Configured tick length.
    pub fn tick(&self) -> Duration {
        self.shared.tick
    }

    /// Export every ring as a serializable snapshot.
    pub fn time_series(&self) -> TimeSeriesSnapshot {
        let rings = self.shared.rings.lock().unwrap_or_else(|e| e.into_inner());
        TimeSeriesSnapshot {
            tick_ms: self.shared.tick.as_millis() as u64,
            ticks: self.ticks(),
            wall_start_ms: self.shared.started_unix_ms,
            rates: rings
                .counters
                .iter()
                .map(|c| (c.name.clone(), c.ring.iter().cloned().collect()))
                .collect(),
            gauges: rings
                .gauges
                .iter()
                .map(|c| (c.name.clone(), c.ring.iter().cloned().collect()))
                .collect(),
            quantiles: rings
                .hists
                .iter()
                .map(|c| (c.name.clone(), c.ring.iter().cloned().collect()))
                .collect(),
        }
    }

    /// Stop and join the background thread (idempotent).
    pub fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Harvester {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for Harvester {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Harvester")
            .field("tick", &self.shared.tick)
            .field("window", &self.shared.window)
            .field("ticks", &self.ticks())
            .field("threaded", &self.handle.is_some())
            .finish()
    }
}

impl HarvesterShared {
    fn run_once(shared: &Arc<HarvesterShared>) {
        // Attribute the harvester's own (ideally zero) churn to the
        // telemetry phase so it can't masquerade as engine work.
        let _scope = AllocScope::enter(AllocPhase::Telemetry);
        shared.alloc_metrics.sync();
        let t_ms = shared.started.elapsed().as_millis() as u64;
        // Rates divide by the *configured* tick so manual run_once calls in
        // tests produce deterministic values; the sampling jitter of the
        // real thread is well under a tick.
        let secs = shared.tick.as_secs_f64().max(1e-9);
        {
            let mut rings = shared.rings.lock().unwrap_or_else(|e| e.into_inner());
            let epoch = shared.registry.epoch();
            if !rings.indexed || rings.epoch != epoch {
                rings.reindex(&shared.registry, epoch, shared.window);
            }
            let window = shared.window;
            for cell in &mut rings.counters {
                let value = cell.handle.get();
                let rate = value.saturating_sub(cell.prev) as f64 / secs;
                cell.prev = value;
                push_bounded(&mut cell.ring, window, TsPoint { t_ms, value: rate });
            }
            for cell in &mut rings.gauges {
                push_bounded(
                    &mut cell.ring,
                    window,
                    TsPoint {
                        t_ms,
                        value: cell.handle.get() as f64,
                    },
                );
            }
            let mut now = [0u64; HIST_BUCKETS];
            let mut delta = [0u64; HIST_BUCKETS];
            for cell in &mut rings.hists {
                cell.handle.bucket_counts_into(&mut now);
                for (d, (n, p)) in delta.iter_mut().zip(now.iter().zip(cell.prev.iter())) {
                    *d = n.saturating_sub(*p);
                }
                cell.prev = now;
                let count: u64 = delta.iter().sum();
                push_bounded(
                    &mut cell.ring,
                    window,
                    QuantilePoint {
                        t_ms,
                        count,
                        p50_ns: quantile_from_counts(&delta, 0.50),
                        p95_ns: quantile_from_counts(&delta, 0.95),
                        p99_ns: quantile_from_counts(&delta, 0.99),
                    },
                );
            }
        }
        let tick = shared.ticks.fetch_add(1, Ordering::Relaxed) + 1;
        let watchdog = shared
            .watchdog
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        if let Some(watchdog) = watchdog {
            watchdog.evaluate_once(tick);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_rates_are_per_tick_deltas() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("catalog.commits");
        let h = Harvester::detached(Arc::clone(&reg), Duration::from_millis(100), 8);
        c.add(5);
        h.run_once(); // first tick: delta from 0 -> 5 over 0.1s = 50/s
        c.add(10);
        h.run_once(); // second tick: delta 10 -> 100/s
        let ts = h.time_series();
        let rates = &ts.rates["catalog.commits"];
        assert_eq!(rates.len(), 2);
        assert!((rates[0].value - 50.0).abs() < 1e-9);
        assert!((rates[1].value - 100.0).abs() < 1e-9);
        assert_eq!(ts.ticks, 2);
        assert_eq!(ts.tick_ms, 100);
    }

    #[test]
    fn histogram_quantiles_are_delta_not_lifetime() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("catalog.commit_lock_hold_ns");
        let harv = Harvester::detached(Arc::clone(&reg), Duration::from_millis(50), 8);
        for _ in 0..100 {
            h.record_ns(500); // sub-µs tick 1
        }
        harv.run_once();
        for _ in 0..10 {
            h.record_ns(2_000_000); // ~2ms tick 2
        }
        harv.run_once();
        let ts = harv.time_series();
        let q = &ts.quantiles["catalog.commit_lock_hold_ns"];
        assert_eq!(q.len(), 2);
        assert_eq!(q[0].count, 100);
        assert_eq!(q[0].p99_ns, 1_000);
        // tick 2's p50 reflects only the slow samples, not the lifetime mix
        assert_eq!(q[1].count, 10);
        assert!(q[1].p50_ns >= 2_000_000);
    }

    #[test]
    fn rings_are_bounded_by_window() {
        let reg = MetricsRegistry::new();
        reg.counter("x.events").inc();
        reg.gauge("x.level").set(1);
        let h = Harvester::detached(Arc::clone(&reg), Duration::from_millis(10), 3);
        for _ in 0..10 {
            h.run_once();
        }
        let ts = h.time_series();
        assert_eq!(ts.rates["x.events"].len(), 3);
        assert_eq!(ts.gauges["x.level"].len(), 3);
        assert_eq!(ts.ticks, 10);
    }

    #[test]
    fn late_registered_metrics_get_indexed() {
        let reg = MetricsRegistry::new();
        reg.counter("a.early").inc();
        let h = Harvester::detached(Arc::clone(&reg), Duration::from_millis(10), 8);
        h.run_once();
        reg.counter("b.late").inc();
        h.run_once();
        let ts = h.time_series();
        assert_eq!(ts.rates["a.early"].len(), 2);
        assert_eq!(ts.rates["b.late"].len(), 1, "late metric missed reindex");
    }

    #[test]
    fn harvester_publishes_alloc_and_rss_series() {
        let reg = MetricsRegistry::new();
        let h = Harvester::detached(Arc::clone(&reg), Duration::from_millis(10), 8);
        h.run_once();
        let ts = h.time_series();
        assert!(ts.gauges.contains_key("process.resident_bytes"));
        assert!(ts.gauges.contains_key("alloc.live_bytes"));
        let key = crate::alloc::phase_metric_key("alloc.bytes", crate::AllocPhase::Telemetry);
        assert!(ts.rates.contains_key(&key), "missing {key}");
    }

    /// The telemetry plane must pass its own gate: once the cell index and
    /// rings are warm, a tick performs zero heap allocations.
    #[cfg(feature = "track-alloc")]
    #[test]
    fn steady_state_tick_does_not_allocate() {
        let reg = MetricsRegistry::new();
        reg.counter("x.events").add(3);
        reg.gauge("x.depth").set(2);
        reg.histogram("x.lat_ns").record_ns(1_234);
        let h = Harvester::detached(Arc::clone(&reg), Duration::from_millis(10), 4);
        for _ in 0..8 {
            h.run_once(); // warm: index cells, fill rings to the window
        }
        let (allocs0, _) = crate::alloc::thread_counts();
        for _ in 0..16 {
            h.run_once();
        }
        let (allocs1, _) = crate::alloc::thread_counts();
        assert_eq!(allocs1 - allocs0, 0, "harvester tick allocated");
    }

    #[test]
    fn threaded_harvester_ticks_and_stops() {
        let reg = MetricsRegistry::new();
        reg.counter("x.events").add(3);
        let mut h = Harvester::start(Arc::clone(&reg), Duration::from_millis(5), 16);
        let deadline = Instant::now() + Duration::from_secs(5);
        while h.ticks() < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(h.ticks() >= 3, "harvester thread never ticked");
        h.stop();
        let after = h.ticks();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(h.ticks(), after, "ticks advanced after stop");
    }
}
