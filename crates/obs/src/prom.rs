//! Zero-dependency Prometheus text exposition.
//!
//! [`encode_prometheus`] renders a [`MetricsSnapshot`] in the Prometheus
//! text format (version 0.0.4): dotted registry names are mangled to
//! underscores, counters gain the conventional `_total` suffix, labeled
//! registry keys (`base{shard="3"}`, see [`MetricName`]) are split back
//! into real exposition labels, and histograms expose cumulative
//! `_bucket{le="…"}` series derived from [`Histogram`](crate::Histogram)
//! bucket counts plus `_sum` / `_count`. Bucket bounds are in
//! nanoseconds, matching the `_ns` suffix the registry names carry.
//!
//! [`TelemetryServer`] serves that encoding over a plain
//! `std::net::TcpListener` — `GET /metrics` for the exposition, `GET
//! /health` for an engine-supplied JSON health report. One accept-loop
//! thread, blocking I/O, `Connection: close` per request: exactly enough
//! HTTP for `curl` and a Prometheus scraper, with no dependencies the
//! container doesn't already have.

use crate::alloc::AllocMetrics;
use crate::name::MetricName;
use crate::{Histogram, MetricsRegistry, MetricsSnapshot};
use std::fmt::Write as _;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Escape a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Mangle a registry key that failed [`MetricName::parse`] into something
/// exposition-legal (best effort, no labels recovered).
fn sanitize(key: &str) -> String {
    let mut out: String = key
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out
        .chars()
        .next()
        .map(|c| c.is_ascii_digit())
        .unwrap_or(true)
    {
        out.insert(0, '_');
    }
    out
}

/// `(exposition_base, rendered_label_block)` for a registry key;
/// label block is `""` or `{k="v",...}`.
fn split_key(key: &str) -> (String, String) {
    match MetricName::parse(key) {
        Ok(name) => {
            let labels = name.labels();
            let block = if labels.is_empty() {
                String::new()
            } else {
                let rendered: Vec<String> = labels
                    .iter()
                    .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
                    .collect();
                format!("{{{}}}", rendered.join(","))
            };
            (name.prometheus_base(), block)
        }
        Err(_) => (sanitize(key), String::new()),
    }
}

/// Append a `# TYPE` header the first time `base` appears.
fn type_header(out: &mut String, last: &mut String, base: &str, kind: &str) {
    if last != base {
        let _ = writeln!(out, "# TYPE {base} {kind}");
        *last = base.to_owned();
    }
}

/// Render `snapshot` in the Prometheus text exposition format 0.0.4.
///
/// Counters are suffixed `_total`; histogram `le` bounds are inclusive
/// upper bounds in nanoseconds (our exclusive bucket bounds are a
/// half-open refinement of the same partition, the standard
/// approximation). Registry keys sharing a base (a labeled shard family)
/// emit one `# TYPE` header.
pub fn encode_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last = String::new();
    for (key, value) in &snapshot.counters {
        let (base, labels) = split_key(key);
        let base = format!("{base}_total");
        type_header(&mut out, &mut last, &base, "counter");
        let _ = writeln!(out, "{base}{labels} {value}");
    }
    for (key, value) in &snapshot.gauges {
        let (base, labels) = split_key(key);
        type_header(&mut out, &mut last, &base, "gauge");
        let _ = writeln!(out, "{base}{labels} {value}");
    }
    for (key, hist) in &snapshot.histograms {
        let (base, labels) = split_key(key);
        type_header(&mut out, &mut last, &base, "histogram");
        // `labels` is `""` or `{k="v"}`; splice `le` into the block.
        let le_prefix = if labels.is_empty() {
            "{".to_owned()
        } else {
            format!("{},", &labels[..labels.len() - 1])
        };
        let mut cumulative = 0u64;
        for (i, count) in hist.buckets.iter().enumerate() {
            cumulative += count;
            match Histogram::bucket_bound(i) {
                Some(bound) => {
                    let _ = writeln!(out, "{base}_bucket{le_prefix}le=\"{bound}\"}} {cumulative}");
                }
                None => {
                    let _ = writeln!(out, "{base}_bucket{le_prefix}le=\"+Inf\"}} {cumulative}");
                }
            }
        }
        if hist.buckets.is_empty() {
            // Snapshot predating bucket export: still emit +Inf so the
            // series parses as a histogram.
            let _ = writeln!(out, "{base}_bucket{le_prefix}le=\"+Inf\"}} {}", hist.count);
        }
        let _ = writeln!(out, "{base}_sum{labels} {}", hist.sum_ns);
        let _ = writeln!(out, "{base}_count{labels} {}", hist.count);
    }
    out
}

// ---------------------------------------------------------------------------
// HTTP endpoint
// ---------------------------------------------------------------------------

/// Health-report callback: returns the JSON body served at `/health`.
pub type HealthFn = Arc<dyn Fn() -> String + Send + Sync>;

/// Minimal HTTP endpoint serving `GET /metrics` (Prometheus text) and
/// `GET /health` (engine-supplied JSON). Bind with port 0 to let the OS
/// pick; [`TelemetryServer::local_addr`] reports the result. Dropping
/// the server stops the accept loop and joins its thread.
pub struct TelemetryServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Bind `addr` and start the accept-loop thread
    /// (`polaris-telemetry`).
    pub fn start(
        addr: SocketAddr,
        registry: Arc<MetricsRegistry>,
        health: HealthFn,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        // Registered up front so every scrape can sync the allocator /
        // RSS attribution counters into the registry first — `/metrics`
        // then always exposes fresh `alloc_bytes_total{phase=...}` and
        // `process_resident_bytes`, even without a harvester ticking.
        let alloc_metrics = AllocMetrics::register(&registry);
        let handle = std::thread::Builder::new()
            .name("polaris-telemetry".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if thread_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Serve inline: requests are tiny and the responses are
                    // rendered from atomics, so one connection at a time is
                    // plenty for a scraper + the occasional curl.
                    let _ = serve_one(stream, &registry, &alloc_metrics, &health);
                }
            })?;
        Ok(TelemetryServer {
            local_addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting and join the thread (idempotent).
    pub fn stop(&mut self) {
        if self.handle.is_none() {
            return;
        }
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_secs(1));
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for TelemetryServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryServer")
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

/// Read one request off `stream`, write one response, close.
fn serve_one(
    mut stream: TcpStream,
    registry: &MetricsRegistry,
    alloc_metrics: &AllocMetrics,
    health: &HealthFn,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
            break;
        }
    }
    let request = String::from_utf8_lossy(&buf);
    let mut parts = request.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);
    let (status, content_type, body) = match (method, path) {
        ("GET", "/metrics") => {
            alloc_metrics.sync();
            (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                encode_prometheus(&registry.snapshot()),
            )
        }
        ("GET", "/health") => ("200 OK", "application/json", health()),
        ("GET", _) => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".into(),
        ),
        _ => (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".into(),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Blocking HTTP GET against a local endpoint; returns `(status_code,
/// body)`. Just enough client for self-scrape assertions in benches and
/// tests — not a general HTTP client.
pub fn http_get(addr: SocketAddr, path: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status = response
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> MetricsSnapshot {
        let reg = MetricsRegistry::new();
        reg.counter("catalog.commits").add(42);
        reg.counter("catalog.commit_lock_hold_ns{shard=\"0\"}")
            .add(1); // counters may be labeled too
        reg.gauge("dcp.lanes.write_busy").set(3);
        let h = reg.histogram("catalog.commit_lock_hold_ns");
        h.record_ns(500);
        h.record_ns(2_000);
        reg.snapshot()
    }

    #[test]
    fn counters_gauges_histograms_render_standard_format() {
        let text = encode_prometheus(&sample_snapshot());
        assert!(text.contains("# TYPE catalog_commits_total counter"));
        assert!(text.contains("catalog_commits_total 42"));
        assert!(text.contains("catalog_commit_lock_hold_ns_total{shard=\"0\"} 1"));
        assert!(text.contains("# TYPE dcp_lanes_write_busy gauge"));
        assert!(text.contains("dcp_lanes_write_busy 3"));
        assert!(text.contains("# TYPE catalog_commit_lock_hold_ns histogram"));
        assert!(text.contains("catalog_commit_lock_hold_ns_bucket{le=\"1000\"} 1"));
        assert!(text.contains("catalog_commit_lock_hold_ns_bucket{le=\"2000\"} 1"));
        assert!(text.contains("catalog_commit_lock_hold_ns_bucket{le=\"4000\"} 2"));
        assert!(text.contains("catalog_commit_lock_hold_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("catalog_commit_lock_hold_ns_sum 2500"));
        assert!(text.contains("catalog_commit_lock_hold_ns_count 2"));
    }

    #[test]
    fn labeled_histograms_merge_le_into_label_block() {
        let reg = MetricsRegistry::new();
        reg.histogram("catalog.commit_lock_hold_ns{shard=\"3\"}")
            .record_ns(100);
        let text = encode_prometheus(&reg.snapshot());
        assert!(text.contains("catalog_commit_lock_hold_ns_bucket{shard=\"3\",le=\"1000\"} 1"));
        assert!(text.contains("catalog_commit_lock_hold_ns_sum{shard=\"3\"} 100"));
        assert!(text.contains("catalog_commit_lock_hold_ns_count{shard=\"3\"} 1"));
    }

    #[test]
    fn every_line_is_exposition_legal() {
        let text = encode_prometheus(&sample_snapshot());
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# TYPE "), "bad comment: {line}");
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            assert!(value.parse::<f64>().is_ok(), "bad value in: {line}");
            let name_part = series.split('{').next().unwrap_or("");
            assert!(
                MetricName::new(name_part).is_ok() && !name_part.contains('.'),
                "illegal series name in: {line}"
            );
        }
    }

    #[test]
    fn label_values_escape_backslash_quote_newline() {
        let reg = MetricsRegistry::new();
        let name = MetricName::new("exec.files")
            .and_then(|n| n.with_label("path", "a\\b\"c\nd"))
            .expect("valid name");
        reg.counter(&name.registry_key()).add(1);
        let text = encode_prometheus(&reg.snapshot());
        assert!(
            text.contains("exec_files_total{path=\"a\\\\b\\\"c\\nd\"} 1"),
            "unescaped label value in: {text}"
        );
        // The escaped line must stay a single physical line.
        assert!(text.lines().any(|l| l.starts_with("exec_files_total{")));
    }

    #[test]
    fn unparseable_keys_are_sanitized_to_legal_names() {
        let reg = MetricsRegistry::new();
        // Registered behind MetricName's back: digit-leading, dashes, and
        // a stray brace that fails `MetricName::parse`.
        reg.counter("9lives-of.a{cat").add(3);
        reg.gauge("weird metric name!").set(2);
        let text = encode_prometheus(&reg.snapshot());
        assert!(text.contains("# TYPE _9lives_of_a_cat_total counter"));
        assert!(text.contains("_9lives_of_a_cat_total 3"));
        assert!(text.contains("weird_metric_name_ 2"));
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let name_part = line.split([' ', '{']).next().unwrap_or("");
            assert!(
                MetricName::new(name_part).is_ok(),
                "illegal sanitized name in: {line}"
            );
        }
    }

    #[test]
    fn empty_registry_scrapes_to_empty_body() {
        let reg = MetricsRegistry::new();
        assert_eq!(encode_prometheus(&reg.snapshot()), "");
        // And over HTTP: an empty exposition is a valid 200, not an error.
        let health: HealthFn = Arc::new(|| "{}".to_owned());
        let mut server = TelemetryServer::start(
            "127.0.0.1:0".parse().expect("loopback addr"),
            MetricsRegistry::new(),
            health,
        )
        .expect("bind loopback");
        let (status, body) = http_get(server.local_addr(), "/metrics").expect("GET /metrics");
        assert_eq!(status, 200);
        // The server's own alloc/RSS attribution metrics are the only
        // series an otherwise-empty registry exposes.
        for line in body.lines() {
            let name = line.trim_start_matches("# TYPE ").split([' ', '{']).next();
            let name = name.unwrap_or("");
            assert!(
                name.starts_with("alloc_") || name.starts_with("process_"),
                "unexpected series from empty registry: {line}"
            );
        }
        assert!(body.contains("process_resident_bytes"));
        assert!(body.contains("alloc_bytes_total{phase=\"unscoped\"}"));
        server.stop();
    }

    #[test]
    fn server_serves_metrics_health_and_404() {
        let reg = MetricsRegistry::new();
        reg.counter("catalog.commits").add(7);
        let health: HealthFn = Arc::new(|| "{\"status\":\"ok\"}".to_owned());
        let mut server = TelemetryServer::start(
            "127.0.0.1:0".parse().expect("loopback addr"),
            Arc::clone(&reg),
            health,
        )
        .expect("bind loopback");
        let addr = server.local_addr();
        let (status, body) = http_get(addr, "/metrics").expect("GET /metrics");
        assert_eq!(status, 200);
        assert!(body.contains("catalog_commits_total 7"), "{body}");
        let (status, body) = http_get(addr, "/health").expect("GET /health");
        assert_eq!(status, 200);
        assert_eq!(body, "{\"status\":\"ok\"}");
        let (status, _) = http_get(addr, "/nope").expect("GET /nope");
        assert_eq!(status, 404);
        server.stop();
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err()
                || http_get(addr, "/metrics").is_err(),
            "server kept serving after stop"
        );
    }
}
