//! Resource attribution: a tracking global allocator and a phase scope
//! stack.
//!
//! The ROADMAP's zero-allocation hot-path work needs a *measured*
//! allocations-per-commit number, not an assumed one. This module supplies
//! the measurement substrate in three pieces:
//!
//! * **A tracking `#[global_allocator]` wrapper** ([`TrackingAlloc`])
//!   around [`std::alloc::System`]. It bumps lock-free global totals
//!   (allocs, frees, bytes allocated/freed, peak live bytes) plus
//!   per-thread counters on every heap operation. The wrapper is only
//!   installed when the crate is built with the **`track-alloc`** cargo
//!   feature; default builds compile this module (the scope stack and all
//!   read APIs keep working) but pay zero allocator overhead and simply
//!   read zeros. [`tracking_enabled`] tells callers which world they live
//!   in.
//! * **A TLS scope stack** ([`AllocScope`], mirroring `SpanGuard` in
//!   [`crate::trace`]) attributing allocations — and lock/condvar *wait
//!   time*, via [`attribute_wait`] — to named engine phases
//!   ([`AllocPhase`]): parse/plan, scan planning, morsel execution, txn
//!   validate, manifest upload, sequencer publish, replay, telemetry.
//!   The stack is a fixed-size array of TLS `Cell`s so the allocator hook
//!   itself never allocates (reentrancy would deadlock or recurse).
//! * **Registry publication** ([`AllocMetrics`]): pre-registered
//!   `alloc.bytes{phase=...}` / `alloc.count{phase=...}` /
//!   `alloc.wait_ns{phase=...}` counters and live/peak/RSS gauges whose
//!   [`AllocMetrics::sync`] copies the raw atomics into a
//!   [`MetricsRegistry`] without allocating — the Harvester calls it each
//!   tick, the Prometheus endpoint before each scrape, so
//!   `alloc_bytes_total{phase="..."}` and `process_resident_bytes` are
//!   always present in `/metrics` (zero-valued when tracking is off).
//!
//! # Attribution semantics
//!
//! Phase counters are *global* (summed across threads): a scope entered on
//! one thread attributes that thread's allocations while it is the
//! innermost scope. Per-statement deltas in `QueryProfile` are computed by
//! snapshotting [`phase_totals`] before/after a statement, so — exactly
//! like the cache-hit deltas already reported there — they are approximate
//! under concurrent sessions. The per-thread counters ([`thread_counts`])
//! are exact for single-threaded sections and back the allocation gate.
use crate::{Gauge, MetricsRegistry};
#[cfg(feature = "track-alloc")]
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of attribution phases (including [`AllocPhase::Unscoped`]).
pub const PHASE_COUNT: usize = 9;

/// Engine phases allocations and waits are attributed to.
///
/// `Unscoped` collects everything recorded while no [`AllocScope`] is
/// active on the current thread (session bookkeeping, test harnesses,
/// background threads that never enter a scope).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum AllocPhase {
    /// No scope active on this thread.
    Unscoped = 0,
    /// SQL tokenize + parse + logical planning (`polaris-sql`).
    ParsePlan = 1,
    /// Snapshot scan planning: pruning, task fan-out, morsel carving.
    ScanPlanning = 2,
    /// Morsel execution on DCP lanes (scan/aggregate leaf work).
    MorselExecution = 3,
    /// Commit-time validation under the footprint shard locks.
    TxnValidate = 4,
    /// Staged-manifest upload / block-list publication to the store.
    ManifestUpload = 5,
    /// The global sequencer section: timestamping + version publish.
    SequencerPublish = 6,
    /// LST snapshot reconstruction (manifest replay on cache miss).
    Replay = 7,
    /// The telemetry plane itself: harvester ticks, watchdog evaluation.
    Telemetry = 8,
}

impl AllocPhase {
    /// All phases, in label order.
    pub const ALL: [AllocPhase; PHASE_COUNT] = [
        AllocPhase::Unscoped,
        AllocPhase::ParsePlan,
        AllocPhase::ScanPlanning,
        AllocPhase::MorselExecution,
        AllocPhase::TxnValidate,
        AllocPhase::ManifestUpload,
        AllocPhase::SequencerPublish,
        AllocPhase::Replay,
        AllocPhase::Telemetry,
    ];

    /// Stable snake_case label, used as the `phase` metric label and in
    /// `EXPLAIN ANALYZE` output.
    pub const fn label(self) -> &'static str {
        match self {
            AllocPhase::Unscoped => "unscoped",
            AllocPhase::ParsePlan => "parse_plan",
            AllocPhase::ScanPlanning => "scan_planning",
            AllocPhase::MorselExecution => "morsel_execution",
            AllocPhase::TxnValidate => "txn_validate",
            AllocPhase::ManifestUpload => "manifest_upload",
            AllocPhase::SequencerPublish => "sequencer_publish",
            AllocPhase::Replay => "replay",
            AllocPhase::Telemetry => "telemetry",
        }
    }
}

/// One phase's accumulated attribution counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    /// Bytes allocated while the phase was innermost.
    pub bytes: u64,
    /// Allocation count while the phase was innermost.
    pub allocs: u64,
    /// Lock/condvar wait nanoseconds attributed via [`attribute_wait`].
    pub wait_ns: u64,
    /// Number of attributed wait events.
    pub waits: u64,
}

/// Process-wide allocator totals (all phases, all threads).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocTotals {
    /// Total successful heap allocations.
    pub allocs: u64,
    /// Total deallocations.
    pub frees: u64,
    /// Total bytes handed out.
    pub alloc_bytes: u64,
    /// Total bytes returned.
    pub freed_bytes: u64,
    /// High-water mark of `alloc_bytes - freed_bytes`.
    pub peak_live_bytes: u64,
}

impl AllocTotals {
    /// Bytes currently live (allocated minus freed). Approximate across
    /// threads; exact once the process quiesces.
    pub fn live_bytes(&self) -> u64 {
        self.alloc_bytes.saturating_sub(self.freed_bytes)
    }
}

struct PhaseCounters {
    bytes: AtomicU64,
    allocs: AtomicU64,
    wait_ns: AtomicU64,
    waits: AtomicU64,
}

impl PhaseCounters {
    const fn new() -> Self {
        PhaseCounters {
            bytes: AtomicU64::new(0),
            allocs: AtomicU64::new(0),
            wait_ns: AtomicU64::new(0),
            waits: AtomicU64::new(0),
        }
    }
}

static PHASES: [PhaseCounters; PHASE_COUNT] = [
    PhaseCounters::new(),
    PhaseCounters::new(),
    PhaseCounters::new(),
    PhaseCounters::new(),
    PhaseCounters::new(),
    PhaseCounters::new(),
    PhaseCounters::new(),
    PhaseCounters::new(),
    PhaseCounters::new(),
];

static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
static TOTAL_FREES: AtomicU64 = AtomicU64::new(0);
static TOTAL_ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static TOTAL_FREED_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_LIVE_BYTES: AtomicU64 = AtomicU64::new(0);

/// Maximum [`AllocScope`] nesting per thread. Deeper scopes still work —
/// they just attribute to the phase at the truncation point.
const MAX_SCOPE_DEPTH: usize = 16;

struct TlsState {
    depth: Cell<usize>,
    stack: [Cell<u8>; MAX_SCOPE_DEPTH],
    allocs: Cell<u64>,
    bytes: Cell<u64>,
}

thread_local! {
    static TLS: TlsState = const {
        TlsState {
            depth: Cell::new(0),
            stack: [const { Cell::new(0) }; MAX_SCOPE_DEPTH],
            allocs: Cell::new(0),
            bytes: Cell::new(0),
        }
    };
}

#[inline]
fn current_phase_index() -> usize {
    // `try_with` so the allocator hook stays safe during TLS teardown
    // (allocations after this thread's TLS is destroyed fall to Unscoped).
    TLS.try_with(|t| {
        let d = t.depth.get();
        if d == 0 {
            0
        } else {
            let idx = t.stack[(d - 1).min(MAX_SCOPE_DEPTH - 1)].get() as usize;
            idx.min(PHASE_COUNT - 1)
        }
    })
    .unwrap_or(0)
}

/// The phase currently innermost on this thread.
pub fn current_phase() -> AllocPhase {
    AllocPhase::ALL[current_phase_index()]
}

#[cfg_attr(not(feature = "track-alloc"), allow(dead_code))]
#[inline]
fn on_alloc(size: usize) {
    let size = size as u64;
    TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    let allocated = TOTAL_ALLOC_BYTES.fetch_add(size, Ordering::Relaxed) + size;
    let live = allocated.saturating_sub(TOTAL_FREED_BYTES.load(Ordering::Relaxed));
    PEAK_LIVE_BYTES.fetch_max(live, Ordering::Relaxed);
    let phase = &PHASES[current_phase_index()];
    phase.bytes.fetch_add(size, Ordering::Relaxed);
    phase.allocs.fetch_add(1, Ordering::Relaxed);
    let _ = TLS.try_with(|t| {
        t.allocs.set(t.allocs.get() + 1);
        t.bytes.set(t.bytes.get() + size);
    });
}

#[cfg_attr(not(feature = "track-alloc"), allow(dead_code))]
#[inline]
fn on_dealloc(size: usize) {
    TOTAL_FREES.fetch_add(1, Ordering::Relaxed);
    TOTAL_FREED_BYTES.fetch_add(size as u64, Ordering::Relaxed);
}

/// Counting wrapper around the system allocator. Installed as the global
/// allocator only under the `track-alloc` feature; safe (but pointless) to
/// instantiate otherwise.
pub struct TrackingAlloc;

#[cfg(feature = "track-alloc")]
// SAFETY: every method delegates to `System`, which upholds the
// `GlobalAlloc` contract; the counter bumps around each call never touch
// the returned memory and never allocate (atomics + const-init TLS cells).
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        on_dealloc(layout.size());
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            // Count a realloc as free(old) + alloc(new) so byte totals
            // stay an exact ledger of live memory.
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

#[cfg(feature = "track-alloc")]
#[global_allocator]
static GLOBAL_TRACKER: TrackingAlloc = TrackingAlloc;

/// Whether the tracking allocator is installed in this build
/// (`track-alloc` cargo feature). When `false`, allocation counters read
/// zero; scope/wait attribution still works.
pub const fn tracking_enabled() -> bool {
    cfg!(feature = "track-alloc")
}

/// RAII guard attributing this thread's allocations (and
/// [`attribute_wait`] calls) to `phase` until dropped. Nests like
/// `trace::SpanGuard`: the innermost scope wins.
#[must_use = "the scope attributes allocations only while alive"]
pub struct AllocScope {
    saved_depth: usize,
    start_allocs: u64,
    start_bytes: u64,
}

impl AllocScope {
    /// Push `phase` onto this thread's scope stack.
    pub fn enter(phase: AllocPhase) -> AllocScope {
        let (saved_depth, start_allocs, start_bytes) = TLS
            .try_with(|t| {
                let d = t.depth.get();
                if d < MAX_SCOPE_DEPTH {
                    t.stack[d].set(phase as u8);
                }
                t.depth.set(d + 1);
                (d, t.allocs.get(), t.bytes.get())
            })
            .unwrap_or((0, 0, 0));
        AllocScope {
            saved_depth,
            start_allocs,
            start_bytes,
        }
    }

    /// Allocations made *by this thread* since the scope was entered —
    /// exact (unlike the global phase counters), which makes it the
    /// measurement the allocation gate trusts.
    pub fn thread_delta(&self) -> (u64, u64) {
        TLS.try_with(|t| {
            (
                t.allocs.get().saturating_sub(self.start_allocs),
                t.bytes.get().saturating_sub(self.start_bytes),
            )
        })
        .unwrap_or((0, 0))
    }
}

impl Drop for AllocScope {
    fn drop(&mut self) {
        let _ = TLS.try_with(|t| {
            // Restore rather than decrement: scopes drop LIFO per thread,
            // so this also self-heals if an inner guard leaked.
            if t.depth.get() > self.saved_depth {
                t.depth.set(self.saved_depth);
            }
        });
    }
}

/// Attribute `ns` nanoseconds of lock/condvar wait to the innermost phase
/// on this thread. Works whether or not the tracking allocator is
/// installed.
pub fn attribute_wait(ns: u64) {
    let phase = &PHASES[current_phase_index()];
    phase.wait_ns.fetch_add(ns, Ordering::Relaxed);
    phase.waits.fetch_add(1, Ordering::Relaxed);
}

/// Process-wide allocator totals.
pub fn totals() -> AllocTotals {
    AllocTotals {
        allocs: TOTAL_ALLOCS.load(Ordering::Relaxed),
        frees: TOTAL_FREES.load(Ordering::Relaxed),
        alloc_bytes: TOTAL_ALLOC_BYTES.load(Ordering::Relaxed),
        freed_bytes: TOTAL_FREED_BYTES.load(Ordering::Relaxed),
        peak_live_bytes: PEAK_LIVE_BYTES.load(Ordering::Relaxed),
    }
}

/// Per-phase attribution totals, indexed by [`AllocPhase`] discriminant.
/// `Copy` so statement profiling can snapshot before/after and diff.
pub fn phase_totals() -> [PhaseTotals; PHASE_COUNT] {
    let mut out = [PhaseTotals::default(); PHASE_COUNT];
    for (slot, phase) in out.iter_mut().zip(PHASES.iter()) {
        *slot = PhaseTotals {
            bytes: phase.bytes.load(Ordering::Relaxed),
            allocs: phase.allocs.load(Ordering::Relaxed),
            wait_ns: phase.wait_ns.load(Ordering::Relaxed),
            waits: phase.waits.load(Ordering::Relaxed),
        };
    }
    out
}

/// This thread's cumulative (allocs, bytes) — exact, unaffected by other
/// threads.
pub fn thread_counts() -> (u64, u64) {
    TLS.try_with(|t| (t.allocs.get(), t.bytes.get()))
        .unwrap_or((0, 0))
}

/// Resident set size of this process in bytes, from `/proc/self/statm`
/// (resident pages × page size). Returns 0 where procfs is unavailable.
/// Reads into a stack buffer: safe to call from the harvester tick without
/// allocating.
pub fn rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        use std::io::Read as _;
        let mut buf = [0u8; 128];
        let Ok(mut f) = std::fs::File::open("/proc/self/statm") else {
            return 0;
        };
        let Ok(n) = f.read(&mut buf) else { return 0 };
        // statm: "size resident shared text lib data dt" in pages.
        let mut fields = buf[..n].split(|b| *b == b' ');
        let _size = fields.next();
        let Some(resident) = fields.next() else {
            return 0;
        };
        let mut pages: u64 = 0;
        for b in resident {
            if !b.is_ascii_digit() {
                break;
            }
            pages = pages.saturating_mul(10).saturating_add((b - b'0') as u64);
        }
        pages.saturating_mul(page_size())
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// Page size from the ELF auxiliary vector (`AT_PAGESZ` in
/// `/proc/self/auxv`), cached after the first read; 4096 if unreadable.
#[cfg(target_os = "linux")]
fn page_size() -> u64 {
    static PAGE: AtomicU64 = AtomicU64::new(0);
    let cached = PAGE.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let mut size = 4096u64;
    if let Ok(auxv) = std::fs::read("/proc/self/auxv") {
        const AT_PAGESZ: u64 = 6;
        for pair in auxv.chunks_exact(16) {
            let key = u64::from_ne_bytes([
                pair[0], pair[1], pair[2], pair[3], pair[4], pair[5], pair[6], pair[7],
            ]);
            let val = u64::from_ne_bytes([
                pair[8], pair[9], pair[10], pair[11], pair[12], pair[13], pair[14], pair[15],
            ]);
            if key == AT_PAGESZ && val != 0 {
                size = val;
                break;
            }
        }
    }
    PAGE.store(size, Ordering::Relaxed);
    size
}

/// Pre-registered registry handles for the attribution metrics.
///
/// Registration allocates (metric names); [`AllocMetrics::sync`] does not —
/// it copies the raw atomics into the already-registered handles, which is
/// what lets the telemetry plane itself pass the allocation gate.
pub struct AllocMetrics {
    phase_bytes: [crate::Counter; PHASE_COUNT],
    phase_allocs: [crate::Counter; PHASE_COUNT],
    phase_wait_ns: [crate::Counter; PHASE_COUNT],
    allocs: crate::Counter,
    frees: crate::Counter,
    live_bytes: Gauge,
    peak_live_bytes: Gauge,
    rss: Gauge,
}

/// Canonical registry key for a phase-labeled attribution metric:
/// `base{phase="label"}`. Panics only on an invalid `base` — call sites
/// pass literals (same contract as [`crate::MetricName::sharded`]).
pub fn phase_metric_key(base: &str, phase: AllocPhase) -> String {
    crate::MetricName::new(base)
        .and_then(|n| n.with_label("phase", phase.label()))
        .expect("alloc metric bases are compile-time literals")
        .registry_key()
}

impl AllocMetrics {
    /// Get-or-create the attribution metrics in `registry`:
    /// `alloc.bytes{phase=...}`, `alloc.count{phase=...}`,
    /// `alloc.wait_ns{phase=...}`, `alloc.allocs`, `alloc.frees`,
    /// `alloc.live_bytes`, `alloc.peak_live_bytes`,
    /// `process.resident_bytes`.
    pub fn register(registry: &MetricsRegistry) -> AllocMetrics {
        let labeled =
            |base: &str, phase: AllocPhase| registry.counter(&phase_metric_key(base, phase));
        AllocMetrics {
            phase_bytes: AllocPhase::ALL.map(|p| labeled("alloc.bytes", p)),
            phase_allocs: AllocPhase::ALL.map(|p| labeled("alloc.count", p)),
            phase_wait_ns: AllocPhase::ALL.map(|p| labeled("alloc.wait_ns", p)),
            allocs: registry.counter("alloc.allocs"),
            frees: registry.counter("alloc.frees"),
            live_bytes: registry.gauge("alloc.live_bytes"),
            peak_live_bytes: registry.gauge("alloc.peak_live_bytes"),
            rss: registry.gauge("process.resident_bytes"),
        }
    }

    /// Copy the raw attribution atomics into the registry handles.
    /// Allocation-free; counters advance monotonically via
    /// `add(raw - seen)`.
    pub fn sync(&self) {
        let raise = |c: &crate::Counter, raw: u64| {
            c.add(raw.saturating_sub(c.get()));
        };
        for (i, snap) in phase_totals().iter().enumerate() {
            raise(&self.phase_bytes[i], snap.bytes);
            raise(&self.phase_allocs[i], snap.allocs);
            raise(&self.phase_wait_ns[i], snap.wait_ns);
        }
        let t = totals();
        raise(&self.allocs, t.allocs);
        raise(&self.frees, t.frees);
        self.live_bytes.set(t.live_bytes() as i64);
        self.peak_live_bytes.set(t.peak_live_bytes as i64);
        self.rss.set(rss_bytes() as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_stack_nests_and_restores() {
        assert_eq!(current_phase(), AllocPhase::Unscoped);
        {
            let _outer = AllocScope::enter(AllocPhase::ParsePlan);
            assert_eq!(current_phase(), AllocPhase::ParsePlan);
            {
                let _inner = AllocScope::enter(AllocPhase::MorselExecution);
                assert_eq!(current_phase(), AllocPhase::MorselExecution);
            }
            assert_eq!(current_phase(), AllocPhase::ParsePlan);
        }
        assert_eq!(current_phase(), AllocPhase::Unscoped);
    }

    #[test]
    fn deep_nesting_saturates_without_corruption() {
        let guards: Vec<AllocScope> = (0..MAX_SCOPE_DEPTH + 4)
            .map(|_| AllocScope::enter(AllocPhase::Replay))
            .collect();
        assert_eq!(current_phase(), AllocPhase::Replay);
        drop(guards);
        assert_eq!(current_phase(), AllocPhase::Unscoped);
    }

    #[test]
    fn wait_attribution_lands_on_innermost_phase() {
        let before = phase_totals()[AllocPhase::TxnValidate as usize];
        {
            let _scope = AllocScope::enter(AllocPhase::TxnValidate);
            attribute_wait(1_500);
            attribute_wait(500);
        }
        let after = phase_totals()[AllocPhase::TxnValidate as usize];
        assert_eq!(after.waits - before.waits, 2);
        assert_eq!(after.wait_ns - before.wait_ns, 2_000);
    }

    #[test]
    fn phase_labels_are_stable_and_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for p in AllocPhase::ALL {
            assert!(seen.insert(p.label()), "duplicate label {}", p.label());
        }
        assert_eq!(
            AllocPhase::ALL[AllocPhase::SequencerPublish as usize].label(),
            "sequencer_publish"
        );
    }

    #[test]
    fn registry_sync_publishes_every_phase() {
        let registry = MetricsRegistry::new();
        let metrics = AllocMetrics::register(&registry);
        metrics.sync();
        let snap = registry.snapshot();
        for phase in AllocPhase::ALL {
            let key = phase_metric_key("alloc.bytes", phase);
            assert!(snap.counters.contains_key(&key), "missing {key}");
        }
        assert!(snap.gauges.contains_key("process.resident_bytes"));
        assert!(snap.gauges.contains_key("alloc.live_bytes"));
    }

    #[test]
    fn sync_is_monotonic_for_counters() {
        let registry = MetricsRegistry::new();
        let metrics = AllocMetrics::register(&registry);
        metrics.sync();
        let first = registry.counter("alloc.allocs").get();
        metrics.sync();
        let second = registry.counter("alloc.allocs").get();
        assert!(second >= first);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn rss_is_nonzero_on_linux() {
        assert!(rss_bytes() > 0);
    }

    #[cfg(feature = "track-alloc")]
    #[test]
    fn tracking_attributes_bytes_to_scoped_phase() {
        let before = phase_totals()[AllocPhase::ManifestUpload as usize];
        let (t_allocs0, t_bytes0) = thread_counts();
        {
            let scope = AllocScope::enter(AllocPhase::ManifestUpload);
            let v: Vec<u8> = Vec::with_capacity(64 * 1024);
            std::hint::black_box(&v);
            let (da, db) = scope.thread_delta();
            assert!(da >= 1, "expected at least one allocation, saw {da}");
            assert!(db >= 64 * 1024, "expected >=64KiB, saw {db}");
        }
        let after = phase_totals()[AllocPhase::ManifestUpload as usize];
        assert!(after.allocs > before.allocs);
        assert!(after.bytes - before.bytes >= 64 * 1024);
        let (t_allocs1, t_bytes1) = thread_counts();
        assert!(t_allocs1 > t_allocs0 && t_bytes1 > t_bytes0);
        let t = totals();
        assert!(t.allocs > 0 && t.alloc_bytes > 0 && t.peak_live_bytes > 0);
    }
}
