//! Metric-name hygiene: validated names with structured labels.
//!
//! The registry keys metrics by plain strings, which made it easy for
//! sharded components to interpolate ad-hoc suffixes
//! (`catalog.commit_lock_hold_ns.shard3`) that no dashboard or exposition
//! format can parse back apart. [`MetricName`] is the central builder:
//! it validates the base name against the Prometheus grammar
//! (`[a-zA-Z_:][a-zA-Z0-9_:]*` after the internal `.` separators are
//! mapped to `_`), carries dimensions like a shard index as *labels*, and
//! renders one canonical registry key (`base{label="value",...}`) that
//! [`encode_prometheus`](crate::prom::encode_prometheus) splits back into
//! standard exposition form.

use std::fmt;

/// Why a metric name was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NameError {
    msg: String,
}

impl NameError {
    fn new(msg: impl Into<String>) -> Self {
        NameError { msg: msg.into() }
    }
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid metric name: {}", self.msg)
    }
}

impl std::error::Error for NameError {}

/// A validated metric name: a base in the crate's `component.metric`
/// convention plus zero or more labels. `.` is the internal namespace
/// separator and maps to `_` in Prometheus exposition; everything else
/// must already be Prometheus-legal.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricName {
    base: String,
    labels: Vec<(String, String)>,
}

/// Is `s` a legal base name? `[a-zA-Z_:.][a-zA-Z0-9_:.]*`, no empty
/// dot-separated segment (so `a..b` and trailing dots are rejected).
fn valid_base(s: &str) -> bool {
    !s.is_empty()
        && s.split('.').all(|seg| {
            let mut chars = seg.chars();
            match chars.next() {
                Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
                _ => return false,
            }
            chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        })
}

/// Escape a label value for the canonical registry key: backslash, quote,
/// newline — the same set the Prometheus exposition format escapes, so
/// registry keys stay single-line and [`MetricName::parse`] can invert
/// the escaping exactly.
fn escape_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Invert [`escape_value`]. Unknown escape sequences pass through
/// verbatim (backslash preserved) so parsing never loses information.
fn unescape_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Is `s` a legal label name? `[a-zA-Z_][a-zA-Z0-9_]*`.
fn valid_label(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

impl MetricName {
    /// Validate `base` (the crate's dotted `component.metric` convention).
    pub fn new(base: &str) -> Result<Self, NameError> {
        if !valid_base(base) {
            return Err(NameError::new(format!(
                "base {base:?} must match [a-zA-Z_:][a-zA-Z0-9_:]* per dot-separated segment"
            )));
        }
        Ok(MetricName {
            base: base.to_owned(),
            labels: Vec::new(),
        })
    }

    /// Attach a label. Label names must match `[a-zA-Z_][a-zA-Z0-9_]*`;
    /// values may be anything (they are quoted in the registry key).
    /// Labels render in insertion order.
    pub fn with_label(mut self, name: &str, value: impl fmt::Display) -> Result<Self, NameError> {
        if !valid_label(name) {
            return Err(NameError::new(format!(
                "label {name:?} must match [a-zA-Z_][a-zA-Z0-9_]*"
            )));
        }
        self.labels.push((name.to_owned(), value.to_string()));
        Ok(self)
    }

    /// The canonical per-shard name: `base{shard="i"}`. Panics only if
    /// `base` itself is invalid — call sites pass literals.
    pub fn sharded(base: &str, shard: usize) -> Self {
        MetricName::new(base)
            .and_then(|n| n.with_label("shard", shard))
            .expect("sharded metric bases are compile-time literals")
    }

    /// The base name (dotted form, no labels).
    pub fn base(&self) -> &str {
        &self.base
    }

    /// The labels, in insertion order.
    pub fn labels(&self) -> &[(String, String)] {
        &self.labels
    }

    /// The canonical registry key: `base` when label-free, otherwise
    /// `base{k="v",...}`. This is the string under which the metric is
    /// registered, so snapshots stay plain `BTreeMap<String, _>`.
    pub fn registry_key(&self) -> String {
        if self.labels.is_empty() {
            return self.base.clone();
        }
        let labels: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_value(v)))
            .collect();
        format!("{}{{{}}}", self.base, labels.join(","))
    }

    /// The Prometheus-mangled base: dots become underscores. Guaranteed to
    /// match `[a-zA-Z_:][a-zA-Z0-9_:]*` by construction.
    pub fn prometheus_base(&self) -> String {
        self.base.replace('.', "_")
    }

    /// Parse a registry key back into base + labels. Accepts both plain
    /// dotted names and the canonical `base{k="v",...}` form; anything
    /// else (including the legacy `.shardN` suffix convention) is an
    /// error, which is what keeps new call sites honest.
    pub fn parse(key: &str) -> Result<Self, NameError> {
        let Some(brace) = key.find('{') else {
            return MetricName::new(key);
        };
        let (base, rest) = key.split_at(brace);
        let inner = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .ok_or_else(|| NameError::new(format!("unbalanced braces in {key:?}")))?;
        let mut name = MetricName::new(base)?;
        for part in inner.split(',') {
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| NameError::new(format!("label without '=' in {key:?}")))?;
            let v = v
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| NameError::new(format!("unquoted label value in {key:?}")))?;
            name = name.with_label(k, unescape_value(v))?;
        }
        Ok(name)
    }
}

impl fmt::Display for MetricName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.registry_key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_dotted_bases_and_rejects_junk() {
        assert!(MetricName::new("catalog.commits").is_ok());
        assert!(MetricName::new("sto.gc_deleted").is_ok());
        assert!(MetricName::new("a:b").is_ok());
        assert!(MetricName::new("").is_err());
        assert!(MetricName::new("1abc").is_err());
        assert!(MetricName::new("a..b").is_err());
        assert!(MetricName::new("a.b.").is_err());
        assert!(MetricName::new("a-b").is_err());
        assert!(MetricName::new("catalog.commit_lock_hold_ns.shard{0}").is_err());
    }

    #[test]
    fn labels_render_canonically_and_round_trip() {
        let n = MetricName::sharded("catalog.commit_lock_hold_ns", 3);
        assert_eq!(n.registry_key(), "catalog.commit_lock_hold_ns{shard=\"3\"}");
        assert_eq!(n.prometheus_base(), "catalog_commit_lock_hold_ns");
        let back = MetricName::parse(&n.registry_key()).unwrap();
        assert_eq!(back, n);
        assert_eq!(back.labels(), &[("shard".to_owned(), "3".to_owned())]);
    }

    #[test]
    fn escaped_label_values_round_trip() {
        let n = MetricName::new("exec.files")
            .and_then(|n| n.with_label("path", "a\\b\"c\nd"))
            .unwrap();
        assert_eq!(n.registry_key(), "exec.files{path=\"a\\\\b\\\"c\\nd\"}");
        let back = MetricName::parse(&n.registry_key()).unwrap();
        assert_eq!(back.labels()[0].1, "a\\b\"c\nd");
        assert_eq!(back, n);
    }

    #[test]
    fn parse_rejects_legacy_suffix_convention_labels() {
        assert!(MetricName::parse("catalog.commits").is_ok());
        assert!(MetricName::parse("x{shard=3}").is_err()); // unquoted
        assert!(MetricName::parse("x{shard=\"3\"").is_err()); // unbalanced
        assert!(MetricName::parse("x{=\"3\"}").is_err());
    }

    #[test]
    fn bad_label_names_rejected() {
        let n = MetricName::new("x").unwrap();
        assert!(n.clone().with_label("1shard", 0).is_err());
        assert!(n.clone().with_label("sh-ard", 0).is_err());
        assert!(n.with_label("shard_0", 1).is_ok());
    }
}
