//! Cross-layer observability substrate for the Polaris reproduction.
//!
//! The paper's evaluation (§7) is a story about *where time and I/O go*:
//! storage requests saved by manifest statistics, cache misses induced by
//! compaction, task retries under node loss. Every layer of this workspace
//! reports into one [`MetricsRegistry`] so those quantities are measured the
//! same way everywhere and can be snapshotted as JSON next to each figure.
//!
//! Design constraints:
//!
//! * **Lock-free hot path.** Counters, gauges and histogram buckets are
//!   plain atomics. The only locks in the crate guard *registration*
//!   (first lookup of a metric name), never recording.
//! * **Shared by handle.** [`Counter`], [`Gauge`] and [`Histogram`] are
//!   cheaply cloneable `Arc` handles. A component can create its own
//!   counters up front and later *adopt* them into an engine's registry
//!   ([`MetricsRegistry::adopt_counter`]) — the handle keeps working, the
//!   registry merely learns to snapshot it.
//! * **Names are `component.metric`.** E.g. `store.reads`,
//!   `lst.cache.hits`, `catalog.commits`, `dcp.task_attempts`,
//!   `exec.files_pruned`, `sto.compactions`.
//!
//! Besides the registry this crate defines the per-statement accounting
//! types threaded through the engine: [`ScanMeter`] (bumped by BE scan
//! tasks), [`QueryProfile`] / [`TxnProfile`] (returned by
//! `Session::last_profile()` in `polaris-core`), and the transaction-scoped
//! tracing subsystem in [`trace`] ([`Tracer`] / [`TraceSink`] / renderers).
//!
//! # Concurrency model
//!
//! Every handle type here is designed to be recorded into from many
//! threads at once with no coordination: [`Counter`]/[`Gauge`] are single
//! relaxed atomics, [`Histogram`] records into fixed power-of-two buckets
//! of atomics, and trace events claim ring slots with one `fetch_add`.
//! Snapshots ([`MetricsRegistry::snapshot`]) read those atomics without
//! stopping writers, so a snapshot is a consistent-enough point-in-time
//! view for dashboards, not a linearizable cut. Meters that follow a
//! sharded component shard their instruments the same way — e.g.
//! [`CatalogMeter::from_registry_sharded`] registers one
//! `catalog.commit_lock_hold_ns{shard="i"}` histogram per commit shard
//! (labeled names built by [`MetricName`]), so concurrent committers on
//! different shards record hold times with no shared cache line beyond
//! their own shard's buckets, and the per-shard split shows *where*
//! commit lock time is going.
//!
//! # Continuous telemetry
//!
//! Point-in-time snapshots miss rates, trends and stalls. Three modules
//! turn the registry into an always-on service surface: [`ts`] (a
//! [`Harvester`] thread sampling the registry into bounded time-series
//! rings), [`health`] (a [`Watchdog`] evaluating stall rules each tick
//! plus a bounded [`SlowLog`]), and [`prom`] (zero-dependency Prometheus
//! text exposition over `std::net::TcpListener`).

pub mod alloc;
pub mod health;
pub mod name;
pub mod prom;
pub mod trace;
pub mod ts;

pub use alloc::{AllocMetrics, AllocPhase, AllocScope, AllocTotals, PhaseTotals};
pub use health::{HealthEvent, SlowLog, SlowRecord, Watchdog};
pub use name::{MetricName, NameError};
pub use prom::{encode_prometheus, http_get, HealthFn, TelemetryServer};
pub use trace::{
    build_spans, chrome_trace_json, post_mortem_dump, render_span_tree, AttrValue, SpanGuard,
    SpanRecord, TraceEvent, TraceEventKind, TraceSink, Tracer,
};
pub use ts::{Harvester, QuantilePoint, TimeSeriesSnapshot, TsPoint};

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Counter / Gauge
// ---------------------------------------------------------------------------

/// Monotonic event counter; a cloneable handle onto one shared `AtomicU64`.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh, unregistered counter starting at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero (benches do this between phases).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }

    /// Do the two handles share the same underlying atomic?
    pub fn same_as(&self, other: &Counter) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// Instantaneous level (queue depth, active transactions); may go down.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A fresh, unregistered gauge starting at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrite the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust the level by `delta` (may be negative).
    #[inline]
    pub fn adjust(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Number of exponential buckets; bucket `i` covers values
/// `< 1_000 << i` nanoseconds (1 µs · 2^i), the last bucket is overflow.
pub const HIST_BUCKETS: usize = 28;

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

/// Fixed-bucket latency histogram (nanosecond samples, exponential buckets
/// from 1 µs to ~134 s). Recording is one `fetch_add` per bucket + sum +
/// count — no locks, no allocation.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// A fresh, unregistered histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    fn bucket_index(ns: u64) -> usize {
        // bucket i covers ns < 1000 << i
        let mut i = 0;
        while i + 1 < HIST_BUCKETS && ns >= (1_000u64 << i) {
            i += 1;
        }
        i
    }

    /// Upper bound (exclusive, in ns) of bucket `i`; `None` for the
    /// overflow bucket. Public so exposition formats can render
    /// `le="<bound>"` boundaries that match recording exactly.
    pub fn bucket_bound(i: usize) -> Option<u64> {
        if i + 1 < HIST_BUCKETS {
            Some(1_000u64 << i)
        } else {
            None
        }
    }

    /// Relaxed load of every bucket's count, index-aligned with
    /// [`Histogram::bucket_bound`]. Length is always [`HIST_BUCKETS`].
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Allocation-free variant of [`Histogram::bucket_counts`]: fill a
    /// caller-owned stack array. The Harvester and watchdog rules use this
    /// so per-tick sampling touches no heap.
    pub fn bucket_counts_into(&self, out: &mut [u64; HIST_BUCKETS]) {
        for (slot, b) in out.iter_mut().zip(self.0.buckets.iter()) {
            *slot = b.load(Ordering::Relaxed);
        }
    }

    /// Record one sample in nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        let inner = &self.0;
        inner.buckets[Self::bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(ns, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record the elapsed time of `since` as one sample.
    #[inline]
    pub fn record_since(&self, since: Instant) {
        self.record_ns(since.elapsed().as_nanos() as u64);
    }

    /// Start a scoped span that records into this histogram on drop.
    pub fn span(&self) -> Span {
        Span {
            hist: self.clone(),
            start: Instant::now(),
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Snapshot with bucket counts and approximate quantiles (upper
    /// bucket bounds).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self.bucket_counts();
        HistogramSnapshot {
            count: buckets.iter().sum(),
            sum_ns: self.0.sum.load(Ordering::Relaxed),
            p50_ns: quantile_from_counts(&buckets, 0.50),
            p95_ns: quantile_from_counts(&buckets, 0.95),
            p99_ns: quantile_from_counts(&buckets, 0.99),
            buckets,
        }
    }
}

/// Approximate quantile `q` over an index-aligned bucket-count slice
/// (the shape [`Histogram::bucket_counts`] returns). Reports the bucket's
/// upper bound in ns; samples landing in the overflow bucket report the
/// last finite bound. Shared by [`Histogram::snapshot`] and the
/// harvester's per-tick delta quantiles in [`ts`].
pub fn quantile_from_counts(counts: &[u64], q: f64) -> u64 {
    let count: u64 = counts.iter().sum();
    if count == 0 {
        return 0;
    }
    let target = ((count as f64) * q).ceil() as u64;
    let mut seen = 0u64;
    for (i, c) in counts.iter().enumerate() {
        seen += c;
        if seen >= target {
            return Histogram::bucket_bound(i)
                .or_else(|| Histogram::bucket_bound(HIST_BUCKETS - 2))
                .unwrap_or(u64::MAX);
        }
    }
    u64::MAX
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples in nanoseconds.
    pub sum_ns: u64,
    /// Approximate median (upper bucket bound), ns.
    pub p50_ns: u64,
    /// Approximate 95th percentile, ns.
    pub p95_ns: u64,
    /// Approximate 99th percentile, ns.
    pub p99_ns: u64,
    /// Per-bucket sample counts, index-aligned with
    /// [`Histogram::bucket_bound`]; the last entry is the overflow bucket.
    /// Empty in snapshots predating bucket export.
    #[serde(default)]
    pub buckets: Vec<u64>,
}

/// Scoped timer: records the elapsed wall time into its histogram on drop.
#[derive(Debug)]
pub struct Span {
    hist: Histogram,
    start: Instant,
}

impl Span {
    /// Elapsed time so far, without ending the span.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.hist.record_since(self.start);
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// The shared metrics registry. One per [`PolarisEngine`]; every layer holds
/// cloned [`Counter`]/[`Histogram`] handles so recording never touches the
/// registry lock — the `RwLock` is only taken to register or snapshot.
///
/// [`PolarisEngine`]: https://docs.rs/polaris-core
#[derive(Default)]
pub struct MetricsRegistry {
    inner: RwLock<RegistryInner>,
    /// Bumped on every registration/adoption. Samplers (the Harvester)
    /// cache cloned handle lists and re-index only when this changes, so
    /// steady-state ticks never clone names out of the registry.
    epoch: AtomicU64,
}

impl MetricsRegistry {
    /// A fresh, empty registry behind an `Arc` (the shape every consumer
    /// wants).
    pub fn new() -> Arc<Self> {
        Arc::new(MetricsRegistry::default())
    }

    /// Get or create the counter registered under `name`.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self
            .inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .counters
            .get(name)
        {
            return c.clone();
        }
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        let handle = inner.counters.entry(name.to_owned()).or_default().clone();
        self.epoch.fetch_add(1, Ordering::Relaxed);
        handle
    }

    /// Get or create the gauge registered under `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self
            .inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .gauges
            .get(name)
        {
            return g.clone();
        }
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        let handle = inner.gauges.entry(name.to_owned()).or_default().clone();
        self.epoch.fetch_add(1, Ordering::Relaxed);
        handle
    }

    /// Get or create the histogram registered under `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = self
            .inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .histograms
            .get(name)
        {
            return h.clone();
        }
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        let handle = inner.histograms.entry(name.to_owned()).or_default().clone();
        self.epoch.fetch_add(1, Ordering::Relaxed);
        handle
    }

    /// Register an externally created counter handle under `name`,
    /// replacing any previous registration. This lets a component that
    /// pre-dates the registry (e.g. a shared `ComputePool`) keep its own
    /// handles while the engine's snapshots still see them.
    pub fn adopt_counter(&self, name: &str, counter: &Counter) {
        self.inner
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .counters
            .insert(name.to_owned(), counter.clone());
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Register an externally created gauge handle under `name`.
    pub fn adopt_gauge(&self, name: &str, gauge: &Gauge) {
        self.inner
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .gauges
            .insert(name.to_owned(), gauge.clone());
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Register an externally created histogram handle under `name`.
    pub fn adopt_histogram(&self, name: &str, histogram: &Histogram) {
        self.inner
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .histograms
            .insert(name.to_owned(), histogram.clone());
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Start a scoped span recording into the histogram named `name`.
    pub fn span(&self, name: &str) -> Span {
        self.histogram(name).span()
    }

    /// The registration epoch (see the `epoch` field). Monotonic; changes
    /// whenever the set of registered metrics may have changed.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Cloned `(name, handle)` lists of everything registered, each list
    /// in name order. Allocates — samplers call this only when
    /// [`MetricsRegistry::epoch`] moved, then record through the cached
    /// handles.
    #[allow(clippy::type_complexity)]
    pub fn handles(
        &self,
    ) -> (
        Vec<(String, Counter)>,
        Vec<(String, Gauge)>,
        Vec<(String, Histogram)>,
    ) {
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        (
            inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        )
    }

    /// Point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("MetricsRegistry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

/// Serializable point-in-time copy of a [`MetricsRegistry`]. Benches dump
/// this as JSON next to their figure output so perf PRs can diff storage
/// requests / retries / cache behavior instead of eyeballing logs.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by metric name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by metric name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by metric name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Pretty-printed JSON, the format benches write to
    /// `results/<figure>_metrics.json`.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("metrics snapshot serializes")
    }

    /// Counter value, or 0 if the metric was never registered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// Component meter bundles
// ---------------------------------------------------------------------------

/// Counters a [`SnapshotCache`](https://docs.rs/polaris-lst) records into.
/// `Default` gives free-standing (unregistered) counters so the cache works
/// without an engine; `from_registry` binds the canonical `lst.cache.*`
/// names.
#[derive(Clone, Debug, Default)]
pub struct CacheMeter {
    /// Snapshot resolved from a cached entry.
    pub hits: Counter,
    /// Snapshot required reconstruction.
    pub misses: Counter,
    /// Manifests replayed during reconstructions (sum of replay lengths).
    pub replayed_manifests: Counter,
    /// Trace handle; replay misses open `lst.cache.replay` spans on it.
    pub tracer: Tracer,
}

impl CacheMeter {
    /// Bind to the canonical `lst.cache.*` metric names in `registry`.
    pub fn from_registry(registry: &MetricsRegistry) -> Self {
        CacheMeter {
            hits: registry.counter("lst.cache.hits"),
            misses: registry.counter("lst.cache.misses"),
            replayed_manifests: registry.counter("lst.cache.replayed_manifests"),
            tracer: Tracer::default(),
        }
    }
}

/// Counters and timers the MVCC catalog records into.
#[derive(Clone, Debug, Default)]
pub struct CatalogMeter {
    /// Transactions that committed.
    pub commits: Counter,
    /// Transactions explicitly aborted / rolled back.
    pub aborts: Counter,
    /// First-committer-wins write-write conflicts detected at commit.
    pub ww_conflicts: Counter,
    /// Serializable-mode read-set validation failures.
    pub serialization_failures: Counter,
    /// Wall time commit-shard locks were held, per commit attempt (from the
    /// last shard acquired until release — the commit's critical section).
    pub commit_lock_hold: Histogram,
    /// Per-shard commit-lock hold histograms, index = shard. May be shorter
    /// than the store's shard count (e.g. the unsharded `Default` binding);
    /// the store backfills free-standing histograms for missing shards.
    pub commit_shard_holds: Vec<Histogram>,
    /// Shard locks acquired, summed over all commit attempts. Divided by
    /// `catalog.commits + catalog.ww_conflicts + …` this gives the mean
    /// footprint width — 1.0 means commits are perfectly disjoint.
    pub commit_shards_acquired: Counter,
    /// Group-commit batch sizes, one sample per sequencer batch. Samples
    /// are *counts*, not nanoseconds, so the exponential ns buckets are
    /// meaningless here — but `sum / count` is the exact mean batch size,
    /// which is the statistic batching tuning needs.
    pub group_batch_size: Histogram,
    /// Wall time a committer spends in the sequencer stage: from passing
    /// validation to its commit timestamp being published (includes group
    /// queue wait, the batch's commit-log write, install and publish).
    pub sequencer_wait: Histogram,
    /// Wall time committers spent *blocked acquiring* commit-shard locks
    /// (the wait profiler's view; `commit_lock_hold` is the hold side).
    pub commit_shard_wait: Histogram,
    /// Wall time group-commit followers spent parked on the group condvar
    /// waiting for their batch leader to publish.
    pub group_commit_wait: Histogram,
    /// Commit batches aborted because the durable commit-log hook failed;
    /// counted once per transaction in the failed batch.
    pub commit_log_failures: Counter,
    /// Trace handle; the commit protocol opens `catalog.*` spans on it.
    pub tracer: Tracer,
}

impl CatalogMeter {
    /// Bind to the canonical `catalog.*` metric names in `registry`,
    /// without per-shard histograms (the store backfills unregistered
    /// ones). Prefer [`CatalogMeter::from_registry_sharded`] when the
    /// commit shard count is known.
    pub fn from_registry(registry: &MetricsRegistry) -> Self {
        Self::from_registry_sharded(registry, 0)
    }

    /// Bind to the canonical `catalog.*` metric names in `registry`,
    /// including one `catalog.commit_lock_hold_ns{shard="i"}` histogram
    /// per commit shard (labeled via [`MetricName::sharded`]), so
    /// `metrics_snapshot()` exposes where commit-lock time concentrates.
    pub fn from_registry_sharded(registry: &MetricsRegistry, shards: usize) -> Self {
        CatalogMeter {
            commits: registry.counter("catalog.commits"),
            aborts: registry.counter("catalog.aborts"),
            ww_conflicts: registry.counter("catalog.ww_conflicts"),
            serialization_failures: registry.counter("catalog.serialization_failures"),
            commit_lock_hold: registry.histogram("catalog.commit_lock_hold_ns"),
            commit_shard_holds: (0..shards)
                .map(|i| {
                    registry.histogram(
                        &MetricName::sharded("catalog.commit_lock_hold_ns", i).registry_key(),
                    )
                })
                .collect(),
            commit_shards_acquired: registry.counter("catalog.commit_shards_acquired"),
            commit_shard_wait: registry.histogram("catalog.commit_shard_wait_ns"),
            group_commit_wait: registry.histogram("catalog.group_commit.wait_ns"),
            group_batch_size: registry.histogram("catalog.group_commit.batch_size"),
            sequencer_wait: registry.histogram("catalog.sequencer_wait_ns"),
            commit_log_failures: registry.counter("catalog.commit_log_failures"),
            tracer: Tracer::default(),
        }
    }
}

/// Counters and timers the durability layer records into: commit-log
/// appends on the write side, checkpoint/replay/orphan work on the
/// recovery side. `Default` gives free-standing handles;
/// [`RecoveryMeter::from_registry`] binds the canonical `recovery.*` and
/// `wal.*` names so they surface in `/metrics` and health reports.
#[derive(Clone, Debug, Default)]
pub struct RecoveryMeter {
    /// Sequencer batches appended to the durable commit log.
    pub wal_appends: Counter,
    /// Bytes of framed log records appended.
    pub wal_bytes: Counter,
    /// Log segments started (first append + every roll).
    pub wal_segments: Counter,
    /// Wall time of each log append (stage + commit-block-list).
    pub wal_append_ns: Histogram,
    /// Durable catalog checkpoints written.
    pub checkpoints: Counter,
    /// Log segments deleted because a checkpoint covers them.
    pub segments_pruned: Counter,
    /// Recoveries that loaded a checkpoint image.
    pub checkpoint_loads: Counter,
    /// Batches replayed from the log tail across all recoveries.
    pub replayed_batches: Counter,
    /// Commits replayed from the log tail across all recoveries.
    pub replayed_commits: Counter,
    /// Torn tail records discarded by the torn-tail rule.
    pub torn_records: Counter,
    /// Orphaned staged manifests deleted by the recovery sweep.
    pub orphans_collected: Counter,
    /// Wall time of each full recovery (checkpoint + replay + sweep).
    pub recovery_ns: Histogram,
    /// Trace handle; recovery opens `recovery.*` spans on it.
    pub tracer: Tracer,
}

impl RecoveryMeter {
    /// Bind to the canonical `wal.*` / `recovery.*` metric names.
    pub fn from_registry(registry: &MetricsRegistry) -> Self {
        RecoveryMeter {
            wal_appends: registry.counter("wal.appends"),
            wal_bytes: registry.counter("wal.bytes"),
            wal_segments: registry.counter("wal.segments"),
            wal_append_ns: registry.histogram("wal.append_ns"),
            checkpoints: registry.counter("wal.checkpoints"),
            segments_pruned: registry.counter("wal.segments_pruned"),
            checkpoint_loads: registry.counter("recovery.checkpoint_loads"),
            replayed_batches: registry.counter("recovery.replayed_batches"),
            replayed_commits: registry.counter("recovery.replayed_commits"),
            torn_records: registry.counter("recovery.torn_records"),
            orphans_collected: registry.counter("recovery.orphans_collected"),
            recovery_ns: registry.histogram("recovery.wall_ns"),
            tracer: Tracer::default(),
        }
    }
}

/// Counters the compute pool records into on every task completion.
/// Replaces the old `Mutex<PoolStats>` (one lock acquisition per task) with
/// three relaxed atomic adds.
#[derive(Clone, Debug, Default)]
pub struct PoolMeter {
    /// Task executions, including retries.
    pub attempts: Counter,
    /// Re-executions after a failed attempt.
    pub retries: Counter,
    /// Attempts lost to simulated node failure.
    pub node_losses: Counter,
    /// Times a DAG scheduler parked because every slot of its workload
    /// class was held by other DAGs sharing the pool (woken by the next
    /// slot release — not a spin).
    pub slot_waits: Counter,
    /// How long those slot parks lasted (one sample per park).
    pub slot_wait_ns: Histogram,
    /// How long morsel lanes parked on the work-deque wake waiting for
    /// stealable morsels or shutdown.
    pub morsel_wake_wait_ns: Histogram,
}

impl PoolMeter {
    /// Bind to the canonical `dcp.*` metric names in `registry`.
    pub fn from_registry(registry: &MetricsRegistry) -> Self {
        PoolMeter {
            attempts: registry.counter("dcp.task_attempts"),
            retries: registry.counter("dcp.task_retries"),
            node_losses: registry.counter("dcp.node_losses"),
            slot_waits: registry.counter("dcp.slot_waits"),
            slot_wait_ns: registry.histogram("dcp.slot_wait_ns"),
            morsel_wake_wait_ns: registry.histogram("dcp.morsel_wake_wait_ns"),
        }
    }

    /// Register this meter's existing handles into `registry` under the
    /// canonical names (for pools created before the engine's registry).
    pub fn adopt_into(&self, registry: &MetricsRegistry) {
        registry.adopt_counter("dcp.task_attempts", &self.attempts);
        registry.adopt_counter("dcp.task_retries", &self.retries);
        registry.adopt_counter("dcp.node_losses", &self.node_losses);
        registry.adopt_counter("dcp.slot_waits", &self.slot_waits);
        registry.adopt_histogram("dcp.slot_wait_ns", &self.slot_wait_ns);
        registry.adopt_histogram("dcp.morsel_wake_wait_ns", &self.morsel_wake_wait_ns);
    }
}

/// Per-statement scan accounting, bumped by BE scan tasks (`polaris-exec`)
/// while they run. Plain atomics: one instance is shared by all tasks of a
/// statement via `Arc`, then folded into the statement's [`QueryProfile`]
/// and the engine registry.
#[derive(Debug, Default)]
pub struct ScanMeter {
    /// Data files opened and scanned.
    pub files_scanned: AtomicU64,
    /// Data files skipped entirely (manifest column ranges or footer stats).
    pub files_pruned: AtomicU64,
    /// Row groups decoded.
    pub row_groups_scanned: AtomicU64,
    /// Row groups skipped by row-group zone maps.
    pub row_groups_pruned: AtomicU64,
    /// Rows entering the scan (decoded, before predicate).
    pub rows_in: AtomicU64,
    /// Rows surviving predicate + delete-vector masking.
    pub rows_out: AtomicU64,
    /// Payload bytes the scan *consumed* from the object store.
    ///
    /// Invariant: this counts footer tails, delete vectors, and the
    /// column-chunk payloads of row groups that **survive pruning** —
    /// nothing a pruned file or row group would have contributed. Both
    /// the eager (whole-blob) and lazy (range-read) scan paths maintain
    /// the same accounting, so their counts are directly comparable; the
    /// eager path's full-blob transfer is deliberately *not* charged
    /// here (it shows up in the store-level `store.*` op counters
    /// instead).
    pub bytes_read: AtomicU64,
    /// Morsels enqueued for execution (initial units plus adaptive
    /// splits; retries of the same morsel are not re-counted).
    pub morsels_scheduled: AtomicU64,
    /// Morsels executed on a lane other than the one they were queued on.
    pub morsels_stolen: AtomicU64,
    /// Column-chunk fetches served from the morsel prefetch cache.
    pub prefetch_hits: AtomicU64,
    /// Bytes prefetched but never consumed by an execution (the morsel
    /// was pruned, re-fetched elsewhere, or the run ended first).
    pub prefetch_wasted_bytes: AtomicU64,
    /// Column chunks never fetched because late materialization found no
    /// surviving rows after evaluating the predicate columns.
    pub late_materialized_chunks_skipped: AtomicU64,
    /// Trace handle; scan kernels open `exec.scan` / `exec.morsel` spans
    /// on it.
    pub tracer: Tracer,
}

impl ScanMeter {
    /// Fresh meter with all counts at zero.
    pub fn new() -> Self {
        ScanMeter::default()
    }

    /// Fresh meter recording `exec.scan` spans into `tracer`.
    pub fn with_tracer(tracer: Tracer) -> Self {
        ScanMeter {
            tracer,
            ..ScanMeter::default()
        }
    }

    /// Convenience: `fetch_add` with relaxed ordering.
    #[inline]
    pub fn bump(field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }

    /// Relaxed load of a field.
    #[inline]
    pub fn read(field: &AtomicU64) -> u64 {
        field.load(Ordering::Relaxed)
    }

    /// Fold this meter into the engine-wide `exec.*` registry counters.
    pub fn fold_into_registry(&self, registry: &MetricsRegistry) {
        let r = |f: &AtomicU64| f.load(Ordering::Relaxed);
        registry
            .counter("exec.files_scanned")
            .add(r(&self.files_scanned));
        registry
            .counter("exec.files_pruned")
            .add(r(&self.files_pruned));
        registry
            .counter("exec.row_groups_scanned")
            .add(r(&self.row_groups_scanned));
        registry
            .counter("exec.row_groups_pruned")
            .add(r(&self.row_groups_pruned));
        registry.counter("exec.rows_in").add(r(&self.rows_in));
        registry.counter("exec.rows_out").add(r(&self.rows_out));
        registry.counter("exec.bytes_read").add(r(&self.bytes_read));
        registry
            .counter("exec.morsels_scheduled")
            .add(r(&self.morsels_scheduled));
        registry
            .counter("exec.morsels_stolen")
            .add(r(&self.morsels_stolen));
        registry
            .counter("exec.prefetch_hits")
            .add(r(&self.prefetch_hits));
        registry
            .counter("exec.prefetch_wasted_bytes")
            .add(r(&self.prefetch_wasted_bytes));
        registry
            .counter("exec.late_materialized_chunks_skipped")
            .add(r(&self.late_materialized_chunks_skipped));
    }

    /// Zero every counter in place, keeping the tracer handle — pooled
    /// meters reset between statements instead of reallocating.
    pub fn reset(&self) {
        for field in [
            &self.files_scanned,
            &self.files_pruned,
            &self.row_groups_scanned,
            &self.row_groups_pruned,
            &self.rows_in,
            &self.rows_out,
            &self.bytes_read,
            &self.morsels_scheduled,
            &self.morsels_stolen,
            &self.prefetch_hits,
            &self.prefetch_wasted_bytes,
            &self.late_materialized_chunks_skipped,
        ] {
            field.store(0, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------------
// Profiles
// ---------------------------------------------------------------------------

/// How a statement's / transaction's optimistic validation ended.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub enum ValidationOutcome {
    /// Not validated yet (statement ran inside a still-open transaction).
    #[default]
    Pending,
    /// Read-only: nothing to validate.
    ReadOnly,
    /// Validation passed and the transaction committed.
    Committed,
    /// First-committer-wins write-write conflict; transaction aborted.
    WwConflict,
    /// Serializable read-set validation failed; transaction aborted.
    SerializationFailure,
    /// Explicitly rolled back before validation.
    RolledBack,
}

/// Structured accounting for one executed statement, returned by
/// `Session::last_profile()`.
#[derive(Clone, Debug, Default, Serialize)]
pub struct QueryProfile {
    /// Statement kind (`select`, `insert`, `update`, `delete`, …).
    pub statement: String,
    /// Data files opened and scanned.
    pub files_scanned: u64,
    /// Data files pruned via manifest / footer statistics.
    pub files_pruned: u64,
    /// Row groups decoded.
    pub row_groups_scanned: u64,
    /// Row groups pruned via zone maps.
    pub row_groups_pruned: u64,
    /// Rows decoded before predicates.
    pub rows_in: u64,
    /// Rows produced (result rows, or rows written for DML).
    pub rows_out: u64,
    /// Payload bytes fetched from the object store by scans.
    pub bytes_read: u64,
    /// Scan morsels enqueued (initial units plus adaptive splits).
    pub morsels_scheduled: u64,
    /// Scan morsels executed on a lane other than their home lane.
    pub morsels_stolen: u64,
    /// Chunk fetches served from the morsel prefetch cache.
    pub prefetch_hits: u64,
    /// Column chunks skipped by late materialization.
    pub late_materialized_chunks_skipped: u64,
    /// Snapshot-cache hits while resolving this statement's snapshots.
    pub cache_hits: u64,
    /// Snapshot-cache misses (reconstructions) for this statement.
    pub cache_misses: u64,
    /// Manifest blocks staged by BE write tasks.
    pub blocks_staged: u64,
    /// Manifest blocks committed by the FE.
    pub blocks_committed: u64,
    /// DCP task attempts executed for this statement.
    pub task_attempts: u64,
    /// DCP task retries (attempts beyond the first per task).
    pub task_retries: u64,
    /// Validation outcome (auto-commit statements resolve at commit;
    /// statements inside an explicit transaction stay [`Pending`]).
    ///
    /// [`Pending`]: ValidationOutcome::Pending
    pub validation: ValidationOutcome,
    /// Heap bytes allocated engine-wide while the statement ran
    /// (tracking-allocator builds only; 0 otherwise). Deltas of the global
    /// phase counters, so — like the cache columns above — approximate
    /// under concurrent sessions.
    pub alloc_bytes: u64,
    /// Heap allocations engine-wide while the statement ran.
    pub allocs: u64,
    /// Per-phase attribution deltas `(phase label, bytes, allocs)`,
    /// phases with activity only, in [`alloc::AllocPhase`] order.
    pub alloc_phases: Vec<(String, u64, u64)>,
    /// Lock/condvar wait nanoseconds attributed while the statement ran
    /// (recorded by the wait profiler regardless of allocator tracking).
    pub wait_ns: u64,
    /// Per-phase wall time in nanoseconds, in execution order
    /// (e.g. `plan`, `execute`, `commit`).
    pub phases_ns: Vec<(String, u64)>,
    /// Total wall time of the statement in nanoseconds.
    pub wall_ns: u64,
    /// Trace span id of this statement's root span (0 when tracing is
    /// disabled); `EXPLAIN ANALYZE` renders the tree rooted here.
    pub trace_span: u64,
    /// Engine-wide stable statement id, assigned at execution start.
    /// Stamped on the root trace span and on slow-log records, so
    /// `polaris.slow_log` rows join to `polaris.trace_spans`.
    pub query_id: u64,
}

impl QueryProfile {
    /// Fold a statement-scoped [`ScanMeter`] into this profile.
    pub fn absorb_scan(&mut self, meter: &ScanMeter) {
        let r = |f: &AtomicU64| f.load(Ordering::Relaxed);
        self.files_scanned += r(&meter.files_scanned);
        self.files_pruned += r(&meter.files_pruned);
        self.row_groups_scanned += r(&meter.row_groups_scanned);
        self.row_groups_pruned += r(&meter.row_groups_pruned);
        self.rows_in += r(&meter.rows_in);
        self.bytes_read += r(&meter.bytes_read);
        self.morsels_scheduled += r(&meter.morsels_scheduled);
        self.morsels_stolen += r(&meter.morsels_stolen);
        self.prefetch_hits += r(&meter.prefetch_hits);
        self.late_materialized_chunks_skipped += r(&meter.late_materialized_chunks_skipped);
    }

    /// Record a named phase duration.
    pub fn phase(&mut self, name: &str, ns: u64) {
        self.phases_ns.push((name.to_owned(), ns));
    }
}

/// Accounting for one whole transaction, populated at commit / rollback.
#[derive(Clone, Debug, Default, Serialize)]
pub struct TxnProfile {
    /// Statements executed inside the transaction.
    pub statements: u32,
    /// Manifest blocks staged across all statements.
    pub blocks_staged: u64,
    /// Manifest blocks committed at transaction commit.
    pub blocks_committed: u64,
    /// Tables written by the transaction.
    pub tables_written: u64,
    /// How validation ended.
    pub validation: ValidationOutcome,
    /// Wall time of the commit protocol itself (validate + publish), ns.
    pub commit_wall_ns: u64,
    /// Heap bytes allocated engine-wide during the commit protocol
    /// (tracking-allocator builds only; 0 otherwise; approximate under
    /// concurrent committers).
    pub commit_alloc_bytes: u64,
    /// Heap allocations engine-wide during the commit protocol.
    pub commit_allocs: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_are_shared_by_handle() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x.events");
        let b = reg.counter("x.events");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x.events").get(), 3);
        assert!(a.same_as(&b));
    }

    #[test]
    fn adopt_counter_makes_existing_handle_visible() {
        let reg = MetricsRegistry::new();
        let mine = Counter::new();
        mine.add(7);
        reg.adopt_counter("pool.attempts", &mine);
        mine.inc();
        assert_eq!(reg.snapshot().counter("pool.attempts"), 8);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(999), 0);
        assert_eq!(Histogram::bucket_index(1_000), 1);
        assert_eq!(Histogram::bucket_index(u64::MAX), HIST_BUCKETS - 1);
        for _ in 0..99 {
            h.record_ns(500); // < 1µs
        }
        h.record_ns(5_000_000_000); // 5s outlier
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.p50_ns, 1_000);
        assert!(snap.p99_ns >= 1_000);
        assert!(snap.sum_ns > 5_000_000_000);
    }

    #[test]
    fn span_records_on_drop() {
        let reg = MetricsRegistry::new();
        {
            let _s = reg.span("phase.commit_ns");
        }
        assert_eq!(reg.histogram("phase.commit_ns").count(), 1);
    }

    #[test]
    fn concurrent_counting_is_lossless() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c.hot");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let reg = MetricsRegistry::new();
        reg.counter("store.reads").add(3);
        reg.gauge("dcp.active_tasks").set(2);
        reg.histogram("catalog.commit_lock_hold_ns").record_ns(1234);
        let json = reg.snapshot().to_json_pretty();
        assert!(json.contains("\"store.reads\": 3"));
        assert!(json.contains("dcp.active_tasks"));
        assert!(json.contains("catalog.commit_lock_hold_ns"));
    }

    #[test]
    fn scan_meter_folds_into_profile_and_registry() {
        let m = ScanMeter::new();
        ScanMeter::bump(&m.files_scanned, 4);
        ScanMeter::bump(&m.files_pruned, 6);
        ScanMeter::bump(&m.bytes_read, 4096);
        let mut p = QueryProfile {
            statement: "select".into(),
            ..QueryProfile::default()
        };
        p.absorb_scan(&m);
        assert_eq!(p.files_pruned, 6);
        assert_eq!(p.bytes_read, 4096);
        let reg = MetricsRegistry::new();
        m.fold_into_registry(&reg);
        assert_eq!(reg.snapshot().counter("exec.files_pruned"), 6);
    }
}
