//! Transaction-scoped tracing: a flight-recorder event log with causal
//! span structure and three renderers.
//!
//! Counters (the rest of this crate) answer *how much*; traces answer
//! *where and why*. The paper's §3.2–§3.4 claim is causal — every
//! statement is a task DAG whose cost decomposes into snapshot
//! acquisition, DCP task execution, manifest/block writes, and SQL-FE
//! validation — so verifying it needs per-transaction span trees, not
//! aggregate deltas.
//!
//! Design:
//!
//! * [`TraceSink`] — a bounded ring buffer of [`TraceEvent`]s. Writers
//!   claim a slot with one `fetch_add` and store under a per-slot mutex
//!   that is only ever contended when the ring wraps onto an in-flight
//!   writer; recording never blocks on readers or other spans. When the
//!   ring is full the oldest events are overwritten (flight-recorder
//!   semantics): the last `capacity` events are always available, which
//!   is exactly what a post-mortem needs.
//! * [`Tracer`] — a cheap cloneable handle (`Option<Arc<TraceSink>>`).
//!   `Tracer::default()` is disabled and every operation on it is a
//!   no-op, so layers can embed a `Tracer` in their meter bundles
//!   ([`CacheMeter`](crate::CacheMeter), [`CatalogMeter`](crate::CatalogMeter),
//!   [`ScanMeter`](crate::ScanMeter)) without caring whether an engine
//!   wired one up.
//! * [`SpanGuard`] — RAII span: emits a `Begin` event on creation and an
//!   `End` (carrying accumulated attributes) on drop. Same-thread
//!   parenting is implicit through a thread-local span stack; work that
//!   hops threads (DCP task attempts) passes an explicit parent span id
//!   captured on the submitting thread.
//!
//! Renderers over a snapshot of the ring:
//!
//! * [`chrome_trace_json`] — Chrome `trace_event` JSON (an object with a
//!   `traceEvents` array), loadable in `chrome://tracing` and Perfetto.
//!   Spans become complete (`"ph":"X"`) events keyed by logical lane
//!   (`tid` = DCP node id for task attempts, a per-thread ordinal
//!   otherwise); instants become `"ph":"i"` events.
//! * [`render_span_tree`] — indented text tree with per-span wall times
//!   and attributes; `EXPLAIN ANALYZE` output is built on this.
//! * [`post_mortem_dump`] — the last N raw events as text, attached to
//!   failed transactions so fault-injection runs are debuggable.

use parking_lot::Mutex;
use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A span/instant name: almost always a `'static` literal (zero-alloc);
/// dynamic names (SQL statement labels) pay one `String`.
pub type SpanName = Cow<'static, str>;

/// An attribute list. Keys are `'static` literals by construction, so
/// attaching an attribute never copies the key.
pub type AttrList = Vec<(&'static str, AttrValue)>;

/// A typed attribute value attached to a span or instant event.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer (counts, ids, bytes).
    U64(u64),
    /// Float (rates, fractions).
    F64(f64),
    /// String (table names, file paths, outcomes).
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_owned())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::F64(v) => write!(f, "{v}"),
            AttrValue::Str(v) => write!(f, "{v}"),
            AttrValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// What kind of record an event is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A span opened. `span` is its id, `parent` its parent span (0 = root).
    Begin,
    /// A span closed. Carries the attributes accumulated while it ran.
    End,
    /// A point-in-time marker (injected fault, retry decision, …).
    Instant,
}

/// One structured event in the flight recorder.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Global emission order (monotonic; survives ring wrap-around).
    pub seq: u64,
    /// Nanoseconds since the sink was created.
    pub ts_ns: u64,
    /// Begin / End / Instant.
    pub kind: TraceEventKind,
    /// Event name (`txn`, `dcp.task`, `exec.scan`, …). `End` events reuse
    /// the name of their `Begin` for readability.
    pub name: SpanName,
    /// Span id this event belongs to (0 for free-standing instants).
    pub span: u64,
    /// Parent span id (0 = root). Meaningful on `Begin` and `Instant`.
    pub parent: u64,
    /// Logical lane: the DCP node id for task attempts, otherwise a
    /// per-OS-thread ordinal (starting at 1000 to avoid node-id clashes).
    pub tid: u64,
    /// Typed attributes.
    pub attrs: AttrList,
}

/// Bounded, lossy-at-the-tail ring buffer of trace events.
pub struct TraceSink {
    slots: Vec<Mutex<Option<TraceEvent>>>,
    /// Next sequence number; `seq % capacity` addresses the slot.
    cursor: AtomicU64,
    /// Next span id to hand out (0 is reserved for "no span").
    next_span: AtomicU64,
    /// Recycled attribute buffers: when a ring slot is overwritten, the
    /// evicted event's attribute capacity lands here instead of the
    /// allocator, and new spans draw from it — the span arena. Bounded by
    /// the ring capacity (each slot contributes at most one buffer).
    attr_arena: Mutex<Vec<AttrList>>,
    epoch: Instant,
}

impl TraceSink {
    /// A sink retaining the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring needs at least one slot");
        TraceSink {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
            next_span: AtomicU64::new(1),
            attr_arena: Mutex::new(Vec::new()),
            epoch: Instant::now(),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever emitted (including overwritten ones).
    pub fn emitted(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Events overwritten by ring wrap-around so far.
    pub fn dropped(&self) -> u64 {
        self.emitted().saturating_sub(self.slots.len() as u64)
    }

    fn alloc_span(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed)
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn emit(&self, mut event: TraceEvent) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        event.seq = seq;
        let slot = (seq % self.slots.len() as u64) as usize;
        let evicted = self.slots[slot].lock().replace(event);
        if let Some(old) = evicted {
            self.recycle_attrs(old.attrs);
        }
    }

    /// Hand an attribute buffer from the arena (capacity preserved from
    /// an evicted event), or a fresh empty one when the arena is dry.
    fn spare_attrs(&self) -> AttrList {
        self.attr_arena.lock().pop().unwrap_or_default()
    }

    /// Return an attribute buffer's capacity to the arena.
    fn recycle_attrs(&self, mut attrs: AttrList) {
        if attrs.capacity() == 0 {
            return;
        }
        attrs.clear();
        let mut arena = self.attr_arena.lock();
        if arena.len() < self.slots.len() {
            arena.push(attrs);
        }
    }

    /// Point-in-time copy of the retained events, in emission order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out: Vec<TraceEvent> = self.slots.iter().filter_map(|s| s.lock().clone()).collect();
        out.sort_by_key(|e| e.seq);
        out
    }
}

impl fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceSink")
            .field("capacity", &self.slots.len())
            .field("emitted", &self.emitted())
            .finish()
    }
}

// Per-thread state: the current-span stack (for implicit parenting) and a
// stable per-thread lane ordinal for Chrome export.
thread_local! {
    static SPAN_STACK: RefCell<Vec<(usize, u64)>> = const { RefCell::new(Vec::new()) };
    static THREAD_LANE: u64 = {
        static NEXT: AtomicU64 = AtomicU64::new(1000);
        NEXT.fetch_add(1, Ordering::Relaxed)
    };
}

fn thread_lane() -> u64 {
    THREAD_LANE.with(|l| *l)
}

/// Cheap handle onto a shared [`TraceSink`]; `Default` is disabled (every
/// call is a no-op), which is what meter bundles embed when no engine
/// wired tracing up.
#[derive(Clone, Default)]
pub struct Tracer(Option<Arc<TraceSink>>);

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Some(sink) => write!(f, "Tracer(capacity={})", sink.capacity()),
            None => write!(f, "Tracer(disabled)"),
        }
    }
}

impl Tracer {
    /// A tracer over a fresh ring of `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer(Some(Arc::new(TraceSink::new(capacity))))
    }

    /// The disabled tracer (same as `Default`).
    pub fn disabled() -> Self {
        Tracer(None)
    }

    /// Is this tracer recording?
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The underlying sink, if enabled.
    pub fn sink(&self) -> Option<&Arc<TraceSink>> {
        self.0.as_ref()
    }

    fn key(&self) -> usize {
        self.0.as_ref().map_or(0, |s| Arc::as_ptr(s) as usize)
    }

    /// The innermost open span on *this thread* for this tracer (0 if
    /// none). This is the implicit parent new spans attach to.
    pub fn current(&self) -> u64 {
        if self.0.is_none() {
            return 0;
        }
        let key = self.key();
        SPAN_STACK.with(|s| {
            s.borrow()
                .iter()
                .rev()
                .find(|(k, _)| *k == key)
                .map_or(0, |(_, id)| *id)
        })
    }

    /// Open a span parented under the current thread-local span.
    pub fn span(&self, name: impl Into<SpanName>) -> SpanGuard {
        let parent = self.current();
        self.span_with(name.into(), parent, thread_lane())
    }

    /// Open a span with an explicit parent (cross-thread work: the parent
    /// id was captured on the submitting thread).
    pub fn span_at(&self, name: impl Into<SpanName>, parent: u64) -> SpanGuard {
        self.span_with(name.into(), parent, thread_lane())
    }

    /// Open a span with an explicit parent on an explicit lane (DCP task
    /// attempts use the node id as the lane).
    pub fn span_on_lane(&self, name: impl Into<SpanName>, parent: u64, lane: u64) -> SpanGuard {
        self.span_with(name.into(), parent, lane)
    }

    fn span_with(&self, name: SpanName, parent: u64, tid: u64) -> SpanGuard {
        let Some(sink) = &self.0 else {
            return SpanGuard::default();
        };
        let id = sink.alloc_span();
        sink.emit(TraceEvent {
            seq: 0,
            ts_ns: sink.now_ns(),
            kind: TraceEventKind::Begin,
            name: name.clone(),
            span: id,
            parent,
            tid,
            attrs: Vec::new(),
        });
        let key = self.key();
        SPAN_STACK.with(|s| s.borrow_mut().push((key, id)));
        SpanGuard {
            sink: Some(Arc::clone(sink)),
            key,
            id,
            tid,
            name,
            attrs: Vec::new(),
        }
    }

    /// Begin a span *without* touching the thread-local stack — for spans
    /// held across statements and threads (the transaction root). Returns
    /// the span id; close it with [`end_manual`](Tracer::end_manual).
    pub fn begin_manual(&self, name: impl Into<SpanName>, parent: u64, attrs: AttrList) -> u64 {
        let Some(sink) = &self.0 else { return 0 };
        let id = sink.alloc_span();
        sink.emit(TraceEvent {
            seq: 0,
            ts_ns: sink.now_ns(),
            kind: TraceEventKind::Begin,
            name: name.into(),
            span: id,
            parent,
            tid: thread_lane(),
            attrs,
        });
        id
    }

    /// Close a span opened with [`begin_manual`](Tracer::begin_manual).
    /// Passing 0 is a no-op, so callers can zero their stored id to make
    /// the close idempotent.
    pub fn end_manual(&self, span: u64, name: impl Into<SpanName>, attrs: AttrList) {
        let Some(sink) = &self.0 else { return };
        if span == 0 {
            return;
        }
        sink.emit(TraceEvent {
            seq: 0,
            ts_ns: sink.now_ns(),
            kind: TraceEventKind::End,
            name: name.into(),
            span,
            parent: 0,
            tid: thread_lane(),
            attrs,
        });
    }

    /// Emit a point-in-time event under the current thread-local span.
    pub fn instant(&self, name: impl Into<SpanName>, attrs: AttrList) {
        let Some(sink) = &self.0 else { return };
        sink.emit(TraceEvent {
            seq: 0,
            ts_ns: sink.now_ns(),
            kind: TraceEventKind::Instant,
            name: name.into(),
            span: 0,
            parent: self.current(),
            tid: thread_lane(),
            attrs,
        });
    }

    /// Snapshot of the retained events (empty when disabled).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.0.as_ref().map_or_else(Vec::new, |s| s.snapshot())
    }

    /// Chrome `trace_event` JSON of the retained events.
    pub fn chrome_trace(&self) -> String {
        chrome_trace_json(&self.events())
    }

    /// Text tree of the span rooted at `root`.
    pub fn render_span_tree(&self, root: u64) -> String {
        render_span_tree(&self.events(), root)
    }

    /// The last `n` retained events as a text dump.
    pub fn post_mortem(&self, n: usize) -> String {
        post_mortem_dump(&self.events(), n)
    }
}

/// RAII span handle: accumulates attributes while open, emits the `End`
/// event (carrying them) on drop. `Default` is a disabled no-op guard.
#[derive(Default)]
pub struct SpanGuard {
    sink: Option<Arc<TraceSink>>,
    key: usize,
    id: u64,
    tid: u64,
    name: SpanName,
    attrs: AttrList,
}

impl SpanGuard {
    /// This span's id (0 when disabled) — pass as the explicit parent for
    /// work submitted to other threads.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attach an attribute, reported on the span's `End` event. The first
    /// attribute draws a recycled buffer from the sink's arena, so warm
    /// spans attach attributes without touching the allocator.
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(sink) = &self.sink {
            if self.attrs.capacity() == 0 {
                self.attrs = sink.spare_attrs();
            }
            self.attrs.push((key, value.into()));
        }
    }
}

impl fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SpanGuard(id={}, name={})", self.id, self.name)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(sink) = self.sink.take() else { return };
        sink.emit(TraceEvent {
            seq: 0,
            ts_ns: sink.now_ns(),
            kind: TraceEventKind::End,
            name: std::mem::take(&mut self.name),
            span: self.id,
            parent: 0,
            tid: self.tid,
            attrs: std::mem::take(&mut self.attrs),
        });
        let key = self.key;
        let id = self.id;
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&(k, i)| k == key && i == id) {
                stack.remove(pos);
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Span reconstruction (shared by the renderers)
// ---------------------------------------------------------------------------

/// A span reconstructed from its Begin/End event pair.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Span id.
    pub id: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Name.
    pub name: String,
    /// Begin timestamp (ns since sink epoch).
    pub start_ns: u64,
    /// End timestamp; `None` if the span is still open (or its End was
    /// overwritten in the ring).
    pub end_ns: Option<u64>,
    /// Lane (node id / thread ordinal).
    pub tid: u64,
    /// Attributes (Begin's, then End's).
    pub attrs: AttrList,
}

impl SpanRecord {
    /// Wall time, ns (0 while unfinished).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.map_or(0, |e| e.saturating_sub(self.start_ns))
    }

    /// Attribute lookup by key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// Pair Begin/End events into [`SpanRecord`]s, keyed by span id. Ends
/// whose Begin was overwritten are dropped; Begins without an End stay
/// open (`end_ns == None`).
pub fn build_spans(events: &[TraceEvent]) -> BTreeMap<u64, SpanRecord> {
    let mut spans: BTreeMap<u64, SpanRecord> = BTreeMap::new();
    for e in events {
        match e.kind {
            TraceEventKind::Begin => {
                spans.insert(
                    e.span,
                    SpanRecord {
                        id: e.span,
                        parent: e.parent,
                        name: e.name.to_string(),
                        start_ns: e.ts_ns,
                        end_ns: None,
                        tid: e.tid,
                        attrs: e.attrs.clone(),
                    },
                );
            }
            TraceEventKind::End => {
                if let Some(s) = spans.get_mut(&e.span) {
                    s.end_ns = Some(e.ts_ns);
                    s.attrs.extend(e.attrs.iter().cloned());
                }
            }
            TraceEventKind::Instant => {}
        }
    }
    spans
}

// ---------------------------------------------------------------------------
// Renderer 1: Chrome trace_event JSON
// ---------------------------------------------------------------------------

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_attr_value(v: &AttrValue) -> String {
    match v {
        AttrValue::U64(n) => n.to_string(),
        AttrValue::F64(f) if f.is_finite() => f.to_string(),
        AttrValue::F64(_) => "null".to_owned(),
        AttrValue::Str(s) => format!("\"{}\"", json_escape(s)),
        AttrValue::Bool(b) => b.to_string(),
    }
}

fn json_args(attrs: &[(&'static str, AttrValue)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", json_escape(k), json_attr_value(v)));
    }
    out.push('}');
    out
}

/// Render events as Chrome `trace_event` JSON (object format). Spans
/// become complete (`X`) events — duration-free and immune to B/E nesting
/// pitfalls — and instants become `i` events. Timestamps are microseconds
/// since the sink epoch. Loadable in `chrome://tracing` and Perfetto.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let spans = build_spans(events);
    let mut rows = Vec::new();
    for s in spans.values() {
        let dur_us = s.duration_ns() as f64 / 1_000.0;
        let mut args = s.attrs.clone();
        args.push(("span", AttrValue::U64(s.id)));
        if s.parent != 0 {
            args.push(("parent", AttrValue::U64(s.parent)));
        }
        if s.end_ns.is_none() {
            args.push(("unfinished", AttrValue::Bool(true)));
        }
        rows.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"polaris\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{},\"args\":{}}}",
            json_escape(&s.name),
            s.start_ns as f64 / 1_000.0,
            dur_us,
            s.tid,
            json_args(&args)
        ));
    }
    for e in events.iter().filter(|e| e.kind == TraceEventKind::Instant) {
        let mut args = e.attrs.clone();
        if e.parent != 0 {
            args.push(("parent", AttrValue::U64(e.parent)));
        }
        rows.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"polaris\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3},\"pid\":1,\"tid\":{},\"args\":{}}}",
            json_escape(&e.name),
            e.ts_ns as f64 / 1_000.0,
            e.tid,
            json_args(&args)
        ));
    }
    format!(
        "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\"}}\n",
        rows.join(",\n")
    )
}

// ---------------------------------------------------------------------------
// Renderer 2: text span tree (EXPLAIN ANALYZE)
// ---------------------------------------------------------------------------

fn fmt_dur(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.1}us", ns as f64 / 1e3)
    }
}

fn fmt_attrs(attrs: &[(&'static str, AttrValue)]) -> String {
    if attrs.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("  [{}]", parts.join(" "))
}

/// Render the subtree rooted at span `root` as an indented text tree with
/// per-span wall times and attributes, children in start order.
pub fn render_span_tree(events: &[TraceEvent], root: u64) -> String {
    let spans = build_spans(events);
    let mut children: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for s in spans.values() {
        children.entry(s.parent).or_default().push(s.id);
    }
    for kids in children.values_mut() {
        kids.sort_by_key(|id| (spans[id].start_ns, *id));
    }
    let mut out = String::new();
    let mut visited = std::collections::HashSet::new();
    render_node(&spans, &children, root, "", true, &mut out, &mut visited);
    if out.is_empty() {
        out.push_str(&format!("(span {root} not found in trace ring)\n"));
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn render_node(
    spans: &BTreeMap<u64, SpanRecord>,
    children: &BTreeMap<u64, Vec<u64>>,
    id: u64,
    prefix: &str,
    is_root: bool,
    out: &mut String,
    visited: &mut std::collections::HashSet<u64>,
) {
    let Some(s) = spans.get(&id) else { return };
    if !visited.insert(id) {
        return; // defensive: never loop on a malformed parent chain
    }
    let dur = match s.end_ns {
        Some(_) => fmt_dur(s.duration_ns()),
        None => "open".to_owned(),
    };
    if is_root {
        out.push_str(&format!("{} {}{}\n", s.name, dur, fmt_attrs(&s.attrs)));
    }
    let kids = children.get(&id).map_or(&[][..], |v| &v[..]);
    for (i, kid) in kids.iter().enumerate() {
        let last = i + 1 == kids.len();
        let branch = if last { "└─ " } else { "├─ " };
        let k = &spans[kid];
        let kdur = match k.end_ns {
            Some(_) => fmt_dur(k.duration_ns()),
            None => "open".to_owned(),
        };
        out.push_str(&format!(
            "{prefix}{branch}{} {}{}\n",
            k.name,
            kdur,
            fmt_attrs(&k.attrs)
        ));
        let next_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
        render_node(spans, children, *kid, &next_prefix, false, out, visited);
    }
}

// ---------------------------------------------------------------------------
// Renderer 3: post-mortem dump
// ---------------------------------------------------------------------------

/// The last `n` events as one text line each — attached to aborted
/// transactions so the failure's causal history is in the error report.
pub fn post_mortem_dump(events: &[TraceEvent], n: usize) -> String {
    let start = events.len().saturating_sub(n);
    let mut out = String::new();
    out.push_str(&format!(
        "last {} of {} retained trace events:\n",
        events.len() - start,
        events.len()
    ));
    for e in &events[start..] {
        let kind = match e.kind {
            TraceEventKind::Begin => "B",
            TraceEventKind::End => "E",
            TraceEventKind::Instant => "i",
        };
        out.push_str(&format!(
            "  #{:<6} {:>12}ns {} {} span={} parent={} tid={}{}\n",
            e.seq,
            e.ts_ns,
            kind,
            e.name,
            e.span,
            e.parent,
            e.tid,
            fmt_attrs(&e.attrs)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_through_thread_local_stack() {
        let t = Tracer::with_capacity(64);
        {
            let mut outer = t.span("outer");
            outer.attr("k", 1u64);
            assert_eq!(t.current(), outer.id());
            {
                let inner = t.span("inner");
                assert_eq!(t.current(), inner.id());
            }
            assert_eq!(t.current(), outer.id());
        }
        assert_eq!(t.current(), 0);
        let spans = build_spans(&t.events());
        assert_eq!(spans.len(), 2);
        let inner = spans.values().find(|s| s.name == "inner").unwrap();
        let outer = spans.values().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.parent, 0);
        assert!(outer.end_ns.is_some() && inner.end_ns.is_some());
        assert_eq!(outer.attr("k"), Some(&AttrValue::U64(1)));
    }

    #[test]
    fn disabled_tracer_is_a_noop() {
        let t = Tracer::default();
        assert!(!t.is_enabled());
        let mut g = t.span("x");
        g.attr("k", "v");
        drop(g);
        t.instant("i", vec![]);
        assert_eq!(t.begin_manual("m", 0, vec![]), 0);
        t.end_manual(0, "m", vec![]);
        assert!(t.events().is_empty());
        assert_eq!(t.current(), 0);
    }

    #[test]
    fn ring_overwrites_oldest_but_keeps_order() {
        let t = Tracer::with_capacity(8);
        for i in 0..20u64 {
            t.instant("tick", vec![("i", AttrValue::U64(i))]);
        }
        let events = t.events();
        assert_eq!(events.len(), 8);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<_>>());
        assert_eq!(t.sink().unwrap().dropped(), 12);
    }

    #[test]
    fn manual_spans_do_not_touch_the_stack() {
        let t = Tracer::with_capacity(64);
        let root = t.begin_manual("txn", 0, vec![("id", AttrValue::U64(7))]);
        assert!(root != 0);
        assert_eq!(t.current(), 0, "manual spans are not implicit parents");
        let child = t.span_at("stmt", root);
        assert_eq!(t.current(), child.id());
        drop(child);
        t.end_manual(root, "txn", vec![("outcome", "committed".into())]);
        let spans = build_spans(&t.events());
        let txn = spans.values().find(|s| s.name == "txn").unwrap();
        assert!(txn.end_ns.is_some());
        assert_eq!(
            txn.attr("outcome"),
            Some(&AttrValue::Str("committed".into()))
        );
        let stmt = spans.values().find(|s| s.name == "stmt").unwrap();
        assert_eq!(stmt.parent, txn.id);
    }

    #[test]
    fn cross_thread_spans_parent_explicitly() {
        let t = Tracer::with_capacity(128);
        let root = t.span("root");
        let parent = root.id();
        let t2 = t.clone();
        std::thread::spawn(move || {
            let g = t2.span_on_lane("task", parent, 3);
            assert_eq!(t2.current(), g.id());
        })
        .join()
        .unwrap();
        drop(root);
        let spans = build_spans(&t.events());
        let task = spans.values().find(|s| s.name == "task").unwrap();
        assert_eq!(task.parent, parent);
        assert_eq!(task.tid, 3);
    }

    #[test]
    fn chrome_export_is_wellformed() {
        let t = Tracer::with_capacity(64);
        {
            let mut g = t.span("phase \"q\"");
            g.attr("table", "line\"item");
            g.attr("files", 3u64);
            t.instant("fault", vec![("op", "put".into())]);
        }
        let json = t.chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("phase \\\"q\\\""));
        assert!(json.contains("\"files\":3"));
        // Balanced braces/brackets — a cheap structural sanity check.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn tree_renderer_shows_nested_durations() {
        let t = Tracer::with_capacity(64);
        let root_id;
        {
            let mut root = t.span("txn");
            root.attr("id", 42u64);
            root_id = root.id();
            {
                let mut a = t.span("insert t");
                a.attr("rows", 10u64);
            }
            let _b = t.span("commit");
        }
        let text = t.render_span_tree(root_id);
        assert!(text.starts_with("txn "));
        assert!(text.contains("├─ insert t"));
        assert!(text.contains("└─ commit"));
        assert!(text.contains("[rows=10]"));
    }

    #[test]
    fn post_mortem_keeps_the_tail() {
        let t = Tracer::with_capacity(32);
        for i in 0..10u64 {
            t.instant("e", vec![("i", AttrValue::U64(i))]);
        }
        let dump = t.post_mortem(3);
        assert!(dump.contains("last 3 of 10"));
        assert!(dump.contains("[i=9]"));
        assert!(!dump.contains("[i=5]"));
    }
}
