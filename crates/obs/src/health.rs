//! Stall watchdogs and the slow-transaction log.
//!
//! A production engine has to notice *absence* of progress: a parked
//! group-commit leader, a transaction pinning the GC watermark, a shard
//! lock held for seconds, a maintenance thread that silently died. The
//! [`Watchdog`] holds named rules — stateful closures evaluated once per
//! harvester tick — with **edge-triggered** semantics: a rule fires one
//! [`HealthEvent`] when its condition becomes true and re-arms only after
//! the condition clears, so a stall that persists for a thousand ticks
//! produces one event, not a thousand. Each firing captures an automatic
//! post-mortem dump from the attached [`Tracer`], so the event carries
//! the recent span history that led into the stall.
//!
//! The [`SlowLog`] is the complementary per-request view: a bounded ring
//! of [`SlowRecord`]s (statements and transactions over a threshold, with
//! phase timings and the rendered trace span tree) that `SHOW ENGINE
//! HEALTH` surfaces without grepping logs.

use crate::Tracer;
use serde::Serialize;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How many trace events a watchdog post-mortem captures per firing.
const POST_MORTEM_EVENTS: usize = 64;

/// A stall rule's verdict for one tick: `None` = healthy, `Some(detail)` =
/// stalled (with a human-readable diagnosis).
pub type RuleVerdict = Option<String>;

/// A named stall rule. The closure may keep internal state (previous
/// counter values, consecutive-tick counts) — it is called exactly once
/// per tick, in registration order, with the current tick number.
struct Rule {
    name: String,
    check: Box<dyn FnMut(u64) -> RuleVerdict + Send>,
    /// Is the condition currently true? Set on fire, cleared when the
    /// rule next reports healthy; while set the rule cannot re-fire.
    firing: bool,
}

/// One watchdog firing: a structured, serializable record of a detected
/// stall plus the trace post-mortem captured at that moment.
#[derive(Clone, Debug, Serialize)]
pub struct HealthEvent {
    /// Rule name, e.g. `group-commit-stall`.
    pub rule: String,
    /// Human-readable diagnosis from the rule.
    pub detail: String,
    /// Harvester tick at which the rule fired.
    pub tick: u64,
    /// Milliseconds since the watchdog was created.
    pub at_ms: u64,
    /// Post-mortem dump of recent trace events (empty only when tracing
    /// is disabled).
    pub trace_dump: String,
}

/// Evaluates stall rules each tick; owns a bounded ring of fired
/// [`HealthEvent`]s. Create with the engine's [`Tracer`] so firings
/// capture span history.
pub struct Watchdog {
    rules: Mutex<Vec<Rule>>,
    events: Mutex<VecDeque<HealthEvent>>,
    capacity: usize,
    tracer: Tracer,
    started: Instant,
}

impl Watchdog {
    /// A watchdog retaining at most `capacity` events (oldest dropped).
    pub fn new(tracer: Tracer, capacity: usize) -> Self {
        Watchdog {
            rules: Mutex::new(Vec::new()),
            events: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            tracer,
            started: Instant::now(),
        }
    }

    /// Register a named rule. Rules run in registration order.
    pub fn add_rule(&self, name: &str, check: impl FnMut(u64) -> RuleVerdict + Send + 'static) {
        self.rules
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Rule {
                name: name.to_owned(),
                check: Box::new(check),
                firing: false,
            });
    }

    /// Evaluate every rule once for `tick`. Returns the events fired by
    /// this evaluation (they are also appended to the ring).
    pub fn evaluate_once(&self, tick: u64) -> Vec<HealthEvent> {
        let mut fired = Vec::new();
        {
            let mut rules = self.rules.lock().unwrap_or_else(|e| e.into_inner());
            for rule in rules.iter_mut() {
                match (rule.check)(tick) {
                    Some(detail) => {
                        if !rule.firing {
                            rule.firing = true;
                            fired.push(HealthEvent {
                                rule: rule.name.clone(),
                                detail,
                                tick,
                                at_ms: self.started.elapsed().as_millis() as u64,
                                trace_dump: self.tracer.post_mortem(POST_MORTEM_EVENTS),
                            });
                        }
                    }
                    None => rule.firing = false,
                }
            }
        }
        if !fired.is_empty() {
            let mut events = self.events.lock().unwrap_or_else(|e| e.into_inner());
            for event in &fired {
                if events.len() == self.capacity {
                    events.pop_front();
                }
                events.push_back(event.clone());
            }
        }
        fired
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> Vec<HealthEvent> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Names of rules whose condition is true *right now* (fired and not
    /// yet cleared).
    pub fn firing(&self) -> Vec<String> {
        self.rules
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter(|r| r.firing)
            .map(|r| r.name.clone())
            .collect()
    }

    /// Registered rule names, in evaluation order.
    pub fn rule_names(&self) -> Vec<String> {
        self.rules
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|r| r.name.clone())
            .collect()
    }
}

impl std::fmt::Debug for Watchdog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Watchdog")
            .field("rules", &self.rule_names())
            .field("firing", &self.firing())
            .field(
                "events",
                &self.events.lock().unwrap_or_else(|e| e.into_inner()).len(),
            )
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Slow log
// ---------------------------------------------------------------------------

/// One slow statement or transaction, captured when it finished.
#[derive(Clone, Debug, Default, Serialize)]
pub struct SlowRecord {
    /// `statement` or `transaction`.
    pub kind: String,
    /// Transaction id the work ran under (0 when unknown).
    pub txn: u64,
    /// Statement text / kind, or a commit summary for transactions.
    pub statement: String,
    /// Total wall time, ns.
    pub wall_ns: u64,
    /// Per-phase wall times in execution order.
    pub phases_ns: Vec<(String, u64)>,
    /// Validation outcome rendered as text (`Committed`, `WwConflict`, …).
    pub validation: String,
    /// Heap bytes allocated engine-wide during the work (tracking
    /// allocator builds only; 0 otherwise).
    #[serde(default)]
    pub alloc_bytes: u64,
    /// Heap allocations engine-wide during the work.
    #[serde(default)]
    pub allocs: u64,
    /// Lock/condvar wait ns attributed while the work ran.
    #[serde(default)]
    pub wait_ns: u64,
    /// Rendered trace span tree (empty when tracing is disabled).
    pub span_tree: String,
    /// Stable statement id (0 when unknown, e.g. commit-summary records);
    /// joins against `polaris.trace_spans.query_id`.
    #[serde(default)]
    pub query_id: u64,
    /// Wall-clock capture time, milliseconds since the Unix epoch (0 when
    /// the producer predates this field).
    #[serde(default)]
    pub at_unix_ms: u64,
}

/// Bounded ring of [`SlowRecord`]s with an atomically adjustable
/// threshold. Callers check [`SlowLog::is_slow`] first so the expensive
/// part (rendering a span tree) only happens for offenders.
#[derive(Debug)]
pub struct SlowLog {
    threshold_ns: AtomicU64,
    records: Mutex<VecDeque<SlowRecord>>,
    capacity: usize,
}

impl SlowLog {
    /// A slow log keeping at most `capacity` records over `threshold_ns`.
    pub fn new(capacity: usize, threshold_ns: u64) -> Self {
        SlowLog {
            threshold_ns: AtomicU64::new(threshold_ns),
            records: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// Current threshold in nanoseconds.
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns.load(Ordering::Relaxed)
    }

    /// Change the threshold (takes effect for subsequent records).
    pub fn set_threshold_ns(&self, ns: u64) {
        self.threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// Does `wall_ns` qualify for the log?
    #[inline]
    pub fn is_slow(&self, wall_ns: u64) -> bool {
        wall_ns >= self.threshold_ns()
    }

    /// Append `record` if it is over the threshold; returns whether it
    /// was kept.
    pub fn record_if_slow(&self, record: SlowRecord) -> bool {
        if !self.is_slow(record.wall_ns) {
            return false;
        }
        let mut records = self.records.lock().unwrap_or_else(|e| e.into_inner());
        if records.len() == self.capacity {
            records.pop_front();
        }
        records.push_back(record);
        true
    }

    /// All retained records, oldest first.
    pub fn records(&self) -> Vec<SlowRecord> {
        self.records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// The `n` slowest retained records, slowest first.
    pub fn top(&self, n: usize) -> Vec<SlowRecord> {
        let mut all = self.records();
        all.sort_by_key(|r| std::cmp::Reverse(r.wall_ns));
        all.truncate(n);
        all
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_fire_once_per_condition_edge() {
        let dog = Watchdog::new(Tracer::disabled(), 8);
        // Stalled on ticks 2..=4 and again on tick 6.
        dog.add_rule("stall", |tick| {
            if (2..=4).contains(&tick) || tick == 6 {
                Some(format!("stalled at tick {tick}"))
            } else {
                None
            }
        });
        let mut fired = Vec::new();
        for tick in 1..=7 {
            fired.extend(dog.evaluate_once(tick));
        }
        let ticks: Vec<u64> = fired.iter().map(|e| e.tick).collect();
        assert_eq!(ticks, vec![2, 6], "one event per rising edge");
        assert_eq!(dog.events().len(), 2);
        assert!(dog.firing().is_empty(), "healthy at tick 7");
    }

    #[test]
    fn firing_reports_active_conditions() {
        let dog = Watchdog::new(Tracer::disabled(), 8);
        dog.add_rule("always", |_| Some("broken".into()));
        dog.add_rule("never", |_| None);
        dog.evaluate_once(1);
        dog.evaluate_once(2);
        assert_eq!(dog.firing(), vec!["always".to_owned()]);
        assert_eq!(dog.events().len(), 1, "still only the edge event");
    }

    #[test]
    fn event_ring_is_bounded() {
        let dog = Watchdog::new(Tracer::disabled(), 2);
        // Alternates stalled/healthy so every stalled tick is an edge.
        dog.add_rule("flappy", |tick| (tick % 2 == 0).then(|| "flap".to_owned()));
        for tick in 1..=10 {
            dog.evaluate_once(tick);
        }
        let events = dog.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].tick, 8);
        assert_eq!(events[1].tick, 10);
    }

    #[test]
    fn firing_captures_trace_post_mortem() {
        let tracer = Tracer::with_capacity(64);
        {
            let _s = tracer.span("catalog.commit");
        }
        let dog = Watchdog::new(tracer, 4);
        dog.add_rule("stall", |_| Some("stuck".into()));
        let fired = dog.evaluate_once(1);
        assert_eq!(fired.len(), 1);
        assert!(
            fired[0].trace_dump.contains("catalog.commit"),
            "post-mortem should include recent spans: {}",
            fired[0].trace_dump
        );
    }

    #[test]
    fn slow_log_thresholds_and_bounds() {
        let log = SlowLog::new(3, 1_000_000);
        assert!(!log.record_if_slow(SlowRecord {
            kind: "statement".into(),
            wall_ns: 999_999,
            ..SlowRecord::default()
        }));
        for i in 0..5u64 {
            assert!(log.record_if_slow(SlowRecord {
                kind: "statement".into(),
                statement: format!("q{i}"),
                wall_ns: 1_000_000 + i,
                ..SlowRecord::default()
            }));
        }
        assert_eq!(log.len(), 3, "ring bounded");
        let top = log.top(2);
        assert_eq!(top[0].statement, "q4");
        assert_eq!(top[1].statement, "q3");
        log.set_threshold_ns(10);
        assert!(log.is_slow(11));
    }
}
