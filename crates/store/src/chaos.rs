//! Kill-anywhere crash injection: a store wrapper that simulates process
//! death at an exact storage operation.
//!
//! A real `kill -9` has two observable effects on the storage layer: the
//! in-flight operation never completes, and no later operation from that
//! process happens either. [`ChaosStore`] reproduces both with a
//! *freeze*: once the armed operation is reached (or [`ChaosStore::kill_now`]
//! fires, e.g. from a commit failpoint probe), every subsequent operation
//! through this wrapper fails — including the unwind-time cleanup the
//! dying engine would love to run (staged-manifest deletion, telemetry
//! flushes), which a crashed process never gets to do. The durable image
//! under the wrapper is exactly the state at the kill instant.
//!
//! The chaos harness keeps the inner store alive across the "crash"
//! (typically an `Arc<MemoryStore>`), then reopens the engine through a
//! *fresh* wrapper over the same inner store — the moral equivalent of
//! restarting the process against the same bucket.

use crate::{BlobMeta, BlobPath, BlockId, ObjectStore, Stamp, StoreError, StoreResult};
use bytes::Bytes;
use parking_lot::Mutex;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A kill armed at the `remaining`-th matching operation.
struct ArmedKill {
    /// Operation name to match (`put`, `delete`, `stage_block`,
    /// `commit_block_list`, `get`, `list`), or `any-write` for any
    /// mutating operation.
    op: String,
    /// Substring the blob path must contain (empty matches everything).
    path_contains: String,
    /// Matches left before the kill fires. 1 means "kill at the next
    /// matching operation".
    remaining: u64,
}

/// [`ObjectStore`] wrapper that dies at a chosen operation and stays dead.
///
/// See the module docs for the crash model. The kill switch is shared
/// (an `Arc<AtomicBool>`) so catalog-level failpoint probes can pull the
/// same trigger between storage operations.
pub struct ChaosStore<S> {
    inner: S,
    killed: Arc<AtomicBool>,
    armed: Mutex<Option<ArmedKill>>,
    /// Operations refused because the store was already dead.
    frozen_ops: AtomicU64,
}

impl<S: ObjectStore> ChaosStore<S> {
    /// Wrap `inner` with no kill armed.
    pub fn new(inner: S) -> Self {
        ChaosStore {
            inner,
            killed: Arc::new(AtomicBool::new(false)),
            armed: Mutex::new(None),
            frozen_ops: AtomicU64::new(0),
        }
    }

    /// Arm a kill at the `nth` (1-based) operation whose name matches `op`
    /// (or `any-write` for any mutating operation) and whose path contains
    /// `path_contains`. The matching operation itself fails — the crash
    /// happens *before* its effect lands — and the store is dead from
    /// then on.
    pub fn arm(&self, op: &str, path_contains: &str, nth: u64) {
        *self.armed.lock() = Some(ArmedKill {
            op: op.to_owned(),
            path_contains: path_contains.to_owned(),
            remaining: nth.max(1),
        });
    }

    /// Pull the trigger immediately (used by commit failpoint probes to
    /// die between storage operations).
    pub fn kill_now(&self) {
        self.killed.store(true, Ordering::SeqCst);
    }

    /// Has the simulated process died?
    pub fn killed(&self) -> bool {
        self.killed.load(Ordering::SeqCst)
    }

    /// The shared kill switch — hand this to failpoint probes so they and
    /// the store freeze together.
    pub fn kill_switch(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.killed)
    }

    /// Operations refused post-mortem (cleanup the dying process never
    /// got to run).
    pub fn frozen_ops(&self) -> u64 {
        self.frozen_ops.load(Ordering::SeqCst)
    }

    /// Access the wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Fail if dead; otherwise fire the armed kill if this operation is
    /// the one it waits for.
    fn gate(&self, op: &str, path: &str, is_write: bool) -> StoreResult<()> {
        if self.killed() {
            self.frozen_ops.fetch_add(1, Ordering::SeqCst);
            return Err(StoreError::Transient {
                detail: format!("chaos: process dead, {op} refused"),
            });
        }
        let mut armed = self.armed.lock();
        if let Some(kill) = armed.as_mut() {
            let op_matches = kill.op == op || (kill.op == "any-write" && is_write);
            if op_matches && path.contains(&kill.path_contains) {
                kill.remaining -= 1;
                if kill.remaining == 0 {
                    *armed = None;
                    drop(armed);
                    self.kill_now();
                    return Err(StoreError::Transient {
                        detail: format!("chaos: killed at {op} {path}"),
                    });
                }
            }
        }
        Ok(())
    }
}

impl<S: ObjectStore> ObjectStore for ChaosStore<S> {
    fn put(&self, path: &BlobPath, data: Bytes, stamp: Stamp) -> StoreResult<()> {
        self.gate("put", path.as_str(), true)?;
        self.inner.put(path, data, stamp)
    }

    fn get(&self, path: &BlobPath) -> StoreResult<Bytes> {
        self.gate("get", path.as_str(), false)?;
        self.inner.get(path)
    }

    fn get_range(&self, path: &BlobPath, range: Range<u64>) -> StoreResult<Bytes> {
        self.gate("get", path.as_str(), false)?;
        self.inner.get_range(path, range)
    }

    fn head(&self, path: &BlobPath) -> StoreResult<BlobMeta> {
        self.gate("get", path.as_str(), false)?;
        self.inner.head(path)
    }

    fn delete(&self, path: &BlobPath) -> StoreResult<()> {
        self.gate("delete", path.as_str(), true)?;
        self.inner.delete(path)
    }

    fn list(&self, prefix: &str) -> StoreResult<Vec<BlobMeta>> {
        self.gate("list", prefix, false)?;
        self.inner.list(prefix)
    }

    fn stage_block(
        &self,
        path: &BlobPath,
        block: BlockId,
        data: Bytes,
        stamp: Stamp,
    ) -> StoreResult<()> {
        self.gate("stage_block", path.as_str(), true)?;
        self.inner.stage_block(path, block, data, stamp)
    }

    fn commit_block_list(
        &self,
        path: &BlobPath,
        blocks: &[BlockId],
        stamp: Stamp,
    ) -> StoreResult<()> {
        self.gate("commit_block_list", path.as_str(), true)?;
        self.inner.commit_block_list(path, blocks, stamp)
    }

    fn committed_blocks(&self, path: &BlobPath) -> StoreResult<Vec<BlockId>> {
        self.gate("get", path.as_str(), false)?;
        self.inner.committed_blocks(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryStore;

    fn p(s: &str) -> BlobPath {
        BlobPath::new(s).unwrap()
    }

    #[test]
    fn unarmed_store_is_transparent() {
        let s = ChaosStore::new(MemoryStore::new());
        s.put(&p("a/b"), Bytes::from_static(b"x"), Stamp(1))
            .unwrap();
        assert_eq!(s.get(&p("a/b")).unwrap(), Bytes::from_static(b"x"));
        assert!(!s.killed());
    }

    #[test]
    fn armed_kill_fires_at_nth_match_and_freezes() {
        let s = ChaosStore::new(MemoryStore::new());
        s.arm("put", "wal", 2);
        // First matching put survives; unrelated paths never match.
        s.put(&p("data/x"), Bytes::from_static(b"d"), Stamp(1))
            .unwrap();
        s.put(&p("sys/wal/1"), Bytes::from_static(b"a"), Stamp(1))
            .unwrap();
        let err = s
            .put(&p("sys/wal/2"), Bytes::from_static(b"b"), Stamp(1))
            .unwrap_err();
        assert!(matches!(err, StoreError::Transient { .. }));
        assert!(s.killed());
        // Dead store refuses everything, including cleanup deletes and reads.
        assert!(s.delete(&p("data/x")).is_err());
        assert!(s.get(&p("data/x")).is_err());
        assert_eq!(s.frozen_ops(), 2);
        // The killed op never landed on the inner store.
        assert!(s.inner().get(&p("sys/wal/2")).is_err());
        assert!(s.inner().get(&p("sys/wal/1")).is_ok());
    }

    #[test]
    fn kill_switch_is_shared() {
        let s = ChaosStore::new(MemoryStore::new());
        let switch = s.kill_switch();
        switch.store(true, std::sync::atomic::Ordering::SeqCst);
        assert!(s.killed());
        assert!(s
            .put(&p("a/b"), Bytes::from_static(b"x"), Stamp(1))
            .is_err());
    }

    #[test]
    fn any_write_matches_all_mutations_but_not_reads() {
        let s = ChaosStore::new(MemoryStore::new());
        s.put(&p("a/b"), Bytes::from_static(b"x"), Stamp(1))
            .unwrap();
        s.arm("any-write", "", 1);
        assert!(s.get(&p("a/b")).is_ok(), "reads never match any-write");
        assert!(s.delete(&p("a/b")).is_err());
        assert!(s.killed());
    }
}
