//! BE-side data-file cache: read-through caching over immutable blobs.

use crate::{BlobMeta, BlobPath, BlockId, ObjectStore, Stamp, StoreResult};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

/// Read-through blob cache, standing in for the BE nodes' SSD/memory data
/// cache (§3.3).
///
/// Because committed data files are immutable, the cache never needs
/// invalidation for correctness — "caches stay warm since data files are
/// immutable once committed" (§7.2). Writes to a path (puts, commits,
/// deletes) still evict it defensively, covering transaction-manifest
/// blobs, which *are* rewritten in place during a transaction's life.
///
/// Eviction is FIFO by insertion order, bounded by total cached bytes.
/// Hit/miss counters let experiments report cache behaviour (the Figure 12
/// SU-with-DM slowdown is precisely a miss-rate story).
pub struct CachingStore<S> {
    inner: S,
    capacity_bytes: u64,
    state: Mutex<CacheState>,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Default)]
struct CacheState {
    entries: HashMap<BlobPath, Bytes>,
    order: VecDeque<BlobPath>,
    bytes: u64,
}

impl<S: ObjectStore> CachingStore<S> {
    /// Wrap `inner` with a cache of at most `capacity_bytes` cached bytes.
    pub fn new(inner: S, capacity_bytes: u64) -> Self {
        CachingStore {
            inner,
            capacity_bytes,
            state: Mutex::new(CacheState::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// `(hits, misses)` since creation.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Drop every cached blob (a node leaving the topology).
    pub fn clear(&self) {
        let mut state = self.state.lock();
        state.entries.clear();
        state.order.clear();
        state.bytes = 0;
    }

    /// Bytes currently cached.
    pub fn cached_bytes(&self) -> u64 {
        self.state.lock().bytes
    }

    /// Access the wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn evict_path(&self, path: &BlobPath) {
        let mut state = self.state.lock();
        if let Some(data) = state.entries.remove(path) {
            state.bytes -= data.len() as u64;
            state.order.retain(|p| p != path);
        }
    }

    fn admit(&self, path: &BlobPath, data: &Bytes) {
        if data.len() as u64 > self.capacity_bytes {
            return;
        }
        let mut state = self.state.lock();
        if state.entries.contains_key(path) {
            return;
        }
        while state.bytes + data.len() as u64 > self.capacity_bytes {
            let Some(victim) = state.order.pop_front() else {
                break;
            };
            if let Some(old) = state.entries.remove(&victim) {
                state.bytes -= old.len() as u64;
            }
        }
        state.bytes += data.len() as u64;
        state.entries.insert(path.clone(), data.clone());
        state.order.push_back(path.clone());
    }
}

impl<S: ObjectStore> ObjectStore for CachingStore<S> {
    fn put(&self, path: &BlobPath, data: Bytes, stamp: Stamp) -> StoreResult<()> {
        self.evict_path(path);
        self.inner.put(path, data, stamp)
    }

    fn get(&self, path: &BlobPath) -> StoreResult<Bytes> {
        if let Some(data) = self.state.lock().entries.get(path).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(data);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let data = self.inner.get(path)?;
        self.admit(path, &data);
        Ok(data)
    }

    fn get_range(&self, path: &BlobPath, range: Range<u64>) -> StoreResult<Bytes> {
        // The cache works at whole-object granularity, like a BE's SSD
        // block cache: a range miss pulls the full blob through the cache
        // once, and every later range (or full) read of the immutable file
        // is served locally.
        let cached = self.state.lock().entries.get(path).cloned();
        let (data, hit) = match cached {
            Some(data) => (data, true),
            None => {
                let data = self.inner.get(path)?;
                self.admit(path, &data);
                (data, false)
            }
        };
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let len = data.len() as u64;
        if range.start > range.end || range.end > len {
            return Err(crate::StoreError::InvalidRange {
                path: path.clone(),
                start: range.start,
                end: range.end,
                len,
            });
        }
        Ok(data.slice(range.start as usize..range.end as usize))
    }

    fn head(&self, path: &BlobPath) -> StoreResult<BlobMeta> {
        self.inner.head(path)
    }

    fn delete(&self, path: &BlobPath) -> StoreResult<()> {
        self.evict_path(path);
        self.inner.delete(path)
    }

    fn list(&self, prefix: &str) -> StoreResult<Vec<BlobMeta>> {
        self.inner.list(prefix)
    }

    fn stage_block(
        &self,
        path: &BlobPath,
        block: BlockId,
        data: Bytes,
        stamp: Stamp,
    ) -> StoreResult<()> {
        self.inner.stage_block(path, block, data, stamp)
    }

    fn commit_block_list(
        &self,
        path: &BlobPath,
        blocks: &[BlockId],
        stamp: Stamp,
    ) -> StoreResult<()> {
        // Transaction manifests are re-committed as statements flush:
        // evict so readers observe the fresh content.
        self.evict_path(path);
        self.inner.commit_block_list(path, blocks, stamp)
    }

    fn committed_blocks(&self, path: &BlobPath) -> StoreResult<Vec<BlockId>> {
        self.inner.committed_blocks(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trait_tests::conformance;
    use crate::MemoryStore;

    #[test]
    fn conforms_to_object_store_semantics() {
        conformance(&CachingStore::new(MemoryStore::new(), 1 << 20));
    }

    #[test]
    fn second_read_hits() {
        let s = CachingStore::new(MemoryStore::new(), 1 << 20);
        let p = BlobPath::new("a/b").unwrap();
        s.put(&p, Bytes::from_static(b"data"), Stamp(1)).unwrap();
        s.get(&p).unwrap();
        s.get(&p).unwrap();
        assert_eq!(s.stats(), (1, 1));
        assert_eq!(s.cached_bytes(), 4);
    }

    #[test]
    fn writes_evict() {
        let s = CachingStore::new(MemoryStore::new(), 1 << 20);
        let p = BlobPath::new("a/b").unwrap();
        s.put(&p, Bytes::from_static(b"v1"), Stamp(1)).unwrap();
        s.get(&p).unwrap();
        s.put(&p, Bytes::from_static(b"v2"), Stamp(2)).unwrap();
        assert_eq!(s.get(&p).unwrap(), Bytes::from_static(b"v2"));
        // two misses: initial read + read after overwrite
        assert_eq!(s.stats().1, 2);
    }

    #[test]
    fn manifest_recommit_evicts() {
        let s = CachingStore::new(MemoryStore::new(), 1 << 20);
        let m = BlobPath::new("a/m").unwrap();
        let b1 = BlockId::new("b1");
        let b2 = BlockId::new("b2");
        s.stage_block(&m, b1.clone(), Bytes::from_static(b"AA"), Stamp(1))
            .unwrap();
        s.commit_block_list(&m, std::slice::from_ref(&b1), Stamp(1))
            .unwrap();
        assert_eq!(s.get(&m).unwrap(), Bytes::from_static(b"AA"));
        s.stage_block(&m, b2.clone(), Bytes::from_static(b"BB"), Stamp(1))
            .unwrap();
        s.commit_block_list(&m, &[b1, b2], Stamp(1)).unwrap();
        assert_eq!(s.get(&m).unwrap(), Bytes::from_static(b"AABB"));
    }

    #[test]
    fn capacity_bound_respected() {
        let s = CachingStore::new(MemoryStore::new(), 10);
        for i in 0..5 {
            let p = BlobPath::new(format!("f/{i}")).unwrap();
            s.put(&p, Bytes::from(vec![0u8; 4]), Stamp(1)).unwrap();
            s.get(&p).unwrap();
        }
        assert!(s.cached_bytes() <= 10);
        // an oversized blob is not admitted
        let big = BlobPath::new("f/big").unwrap();
        s.put(&big, Bytes::from(vec![0u8; 100]), Stamp(1)).unwrap();
        s.get(&big).unwrap();
        assert!(s.cached_bytes() <= 10);
    }

    #[test]
    fn clear_resets() {
        let s = CachingStore::new(MemoryStore::new(), 1 << 20);
        let p = BlobPath::new("a/b").unwrap();
        s.put(&p, Bytes::from_static(b"data"), Stamp(1)).unwrap();
        s.get(&p).unwrap();
        s.clear();
        assert_eq!(s.cached_bytes(), 0);
        s.get(&p).unwrap();
        assert_eq!(s.stats().1, 2);
    }

    #[test]
    fn range_reads_use_cache() {
        let s = CachingStore::new(MemoryStore::new(), 1 << 20);
        let p = BlobPath::new("a/b").unwrap();
        s.put(&p, Bytes::from_static(b"hello world"), Stamp(1))
            .unwrap();
        s.get(&p).unwrap(); // populate (one miss)
        assert_eq!(s.get_range(&p, 0..5).unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(s.stats(), (1, 1));
        assert!(s.get_range(&p, 5..100).is_err());
    }
}
