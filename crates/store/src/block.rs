//! Block identifiers for the block-blob protocol.

use std::fmt;

/// Unique identifier of a block staged against a blob.
///
/// In the paper each SQL BE generates a unique ID per block it uploads to a
/// transaction manifest (§3.2.2); the IDs flow back through the DCP to the
/// SQL FE, which commits the aggregated list. IDs only need to be unique
/// *within one blob*, matching Azure semantics.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(String);

impl BlockId {
    /// Wrap a raw block ID.
    pub fn new(raw: impl Into<String>) -> Self {
        BlockId(raw.into())
    }

    /// Deterministically derive a block ID from a (node, task, attempt,
    /// sequence) tuple — the shape BEs use so that retried attempts produce
    /// *different* IDs and stale blocks are never committed.
    pub fn for_task(node: u64, task: u64, attempt: u32, seq: u32) -> Self {
        BlockId(format!("blk-n{node}-t{task}-a{attempt}-s{seq}"))
    }

    /// The raw ID string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_ids_distinguish_attempts() {
        let a = BlockId::for_task(1, 2, 0, 0);
        let b = BlockId::for_task(1, 2, 1, 0);
        assert_ne!(a, b);
        assert!(a.as_str().contains("n1"));
    }

    #[test]
    fn display_round_trips() {
        let id = BlockId::new("abc");
        assert_eq!(id.to_string(), "abc");
    }
}
