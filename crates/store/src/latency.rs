//! Cloud-latency cost model for benchmark realism.

use crate::{BlobMeta, BlobPath, BlockId, ObjectStore, Stamp, StoreResult};
use bytes::Bytes;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Simple affine cost model for remote storage: each operation pays a fixed
/// per-request latency plus a per-byte transfer cost.
///
/// Defaults are loosely calibrated to cloud object storage (sub-ms in-region
/// request latency scaled down so benches finish quickly, ~100 MB/s
/// effective single-stream throughput). The *relative* costs are what matter
/// for figure shapes: many-small-files pays per-request overhead, which is
/// precisely the §5.1 "small data files" pathology compaction fixes.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// Fixed cost per request.
    pub per_request: Duration,
    /// Transfer cost per byte.
    pub per_byte: Duration,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            per_request: Duration::from_micros(200),
            per_byte: Duration::from_nanos(10),
        }
    }
}

impl LatencyModel {
    /// A model with zero cost (useful to disable latency in one code path).
    pub const ZERO: LatencyModel = LatencyModel {
        per_request: Duration::ZERO,
        per_byte: Duration::ZERO,
    };

    fn cost(&self, bytes: usize) -> Duration {
        self.per_request + self.per_byte * (bytes as u32)
    }
}

/// [`ObjectStore`] wrapper that sleeps according to a [`LatencyModel`] and
/// accumulates the total simulated stall time.
pub struct LatencyStore<S> {
    inner: S,
    model: LatencyModel,
    stalled_nanos: AtomicU64,
}

impl<S: ObjectStore> LatencyStore<S> {
    /// Wrap `inner` with the given cost model.
    pub fn new(inner: S, model: LatencyModel) -> Self {
        LatencyStore {
            inner,
            model,
            stalled_nanos: AtomicU64::new(0),
        }
    }

    /// Total time spent sleeping to simulate storage latency.
    pub fn total_stall(&self) -> Duration {
        Duration::from_nanos(self.stalled_nanos.load(Ordering::Relaxed))
    }

    /// Access the wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn pay(&self, bytes: usize) {
        let d = self.model.cost(bytes);
        if !d.is_zero() {
            std::thread::sleep(d);
            self.stalled_nanos
                .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        }
    }
}

impl<S: ObjectStore> ObjectStore for LatencyStore<S> {
    fn put(&self, path: &BlobPath, data: Bytes, stamp: Stamp) -> StoreResult<()> {
        self.pay(data.len());
        self.inner.put(path, data, stamp)
    }

    fn get(&self, path: &BlobPath) -> StoreResult<Bytes> {
        let data = self.inner.get(path)?;
        self.pay(data.len());
        Ok(data)
    }

    fn get_range(&self, path: &BlobPath, range: Range<u64>) -> StoreResult<Bytes> {
        let data = self.inner.get_range(path, range)?;
        self.pay(data.len());
        Ok(data)
    }

    fn head(&self, path: &BlobPath) -> StoreResult<BlobMeta> {
        self.pay(0);
        self.inner.head(path)
    }

    fn delete(&self, path: &BlobPath) -> StoreResult<()> {
        self.pay(0);
        self.inner.delete(path)
    }

    fn list(&self, prefix: &str) -> StoreResult<Vec<BlobMeta>> {
        self.pay(0);
        self.inner.list(prefix)
    }

    fn stage_block(
        &self,
        path: &BlobPath,
        block: BlockId,
        data: Bytes,
        stamp: Stamp,
    ) -> StoreResult<()> {
        self.pay(data.len());
        self.inner.stage_block(path, block, data, stamp)
    }

    fn commit_block_list(
        &self,
        path: &BlobPath,
        blocks: &[BlockId],
        stamp: Stamp,
    ) -> StoreResult<()> {
        self.pay(0);
        self.inner.commit_block_list(path, blocks, stamp)
    }

    fn committed_blocks(&self, path: &BlobPath) -> StoreResult<Vec<BlockId>> {
        self.inner.committed_blocks(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryStore;

    #[test]
    fn zero_model_adds_no_stall() {
        let s = LatencyStore::new(MemoryStore::new(), LatencyModel::ZERO);
        let p = BlobPath::new("a/b").unwrap();
        s.put(&p, Bytes::from_static(b"x"), Stamp(1)).unwrap();
        s.get(&p).unwrap();
        assert_eq!(s.total_stall(), Duration::ZERO);
    }

    #[test]
    fn stall_accumulates_per_operation() {
        let model = LatencyModel {
            per_request: Duration::from_micros(50),
            per_byte: Duration::ZERO,
        };
        let s = LatencyStore::new(MemoryStore::new(), model);
        let p = BlobPath::new("a/b").unwrap();
        s.put(&p, Bytes::from_static(b"x"), Stamp(1)).unwrap();
        s.get(&p).unwrap();
        assert!(s.total_stall() >= Duration::from_micros(100));
    }

    #[test]
    fn cost_is_affine_in_bytes() {
        let m = LatencyModel {
            per_request: Duration::from_micros(10),
            per_byte: Duration::from_nanos(100),
        };
        assert_eq!(m.cost(0), Duration::from_micros(10));
        assert_eq!(m.cost(1000), Duration::from_micros(110));
    }
}
