//! Operation-counting wrapper used by the engine and benchmark harnesses.

use crate::{BlobMeta, BlobPath, BlockId, ObjectStore, Stamp, StoreResult};
use bytes::Bytes;
use polaris_obs::{Counter, MetricsRegistry, Tracer};
use std::ops::Range;
use std::sync::Arc;

/// Snapshot of operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// `get`/`get_range` calls.
    pub reads: u64,
    /// `put` calls.
    pub puts: u64,
    /// `stage_block` calls.
    pub staged_blocks: u64,
    /// `commit_block_list` calls.
    pub commits: u64,
    /// `delete` calls.
    pub deletes: u64,
    /// `list` calls.
    pub lists: u64,
    /// Bytes returned by reads.
    pub bytes_read: u64,
    /// Bytes accepted by puts and staged blocks.
    pub bytes_written: u64,
}

/// Transparent [`ObjectStore`] wrapper that counts operations and bytes.
///
/// The figure harnesses use these counters to report IO amplification — e.g.
/// the §5.2 checkpoint experiment shows how many manifest bytes a snapshot
/// reconstruction reads with and without checkpoints. Counters are
/// [`polaris_obs::Counter`] handles, so a store built with
/// [`StatsStore::with_registry`] shares them with the engine-wide
/// [`MetricsRegistry`] under `store.*` names while `counts()` keeps serving
/// cheap local snapshots.
pub struct StatsStore<S: ?Sized> {
    reads: Counter,
    puts: Counter,
    staged: Counter,
    commits: Counter,
    deletes: Counter,
    lists: Counter,
    bytes_read: Counter,
    bytes_written: Counter,
    tracer: Tracer,
    inner: S,
}

impl<S: ObjectStore> StatsStore<S> {
    /// Wrap `inner` with free-standing counters.
    pub fn new(inner: S) -> Self {
        StatsStore {
            inner,
            reads: Counter::new(),
            puts: Counter::new(),
            staged: Counter::new(),
            commits: Counter::new(),
            deletes: Counter::new(),
            lists: Counter::new(),
            bytes_read: Counter::new(),
            bytes_written: Counter::new(),
            tracer: Tracer::default(),
        }
    }

    /// Wrap `inner` with counters registered in `registry` under `store.*`
    /// names, so store traffic shows up in the engine-wide metrics snapshot.
    pub fn with_registry(inner: S, registry: &MetricsRegistry) -> Self {
        StatsStore {
            inner,
            reads: registry.counter("store.reads"),
            puts: registry.counter("store.puts"),
            staged: registry.counter("store.staged_blocks"),
            commits: registry.counter("store.commits"),
            deletes: registry.counter("store.deletes"),
            lists: registry.counter("store.lists"),
            bytes_read: registry.counter("store.bytes_read"),
            bytes_written: registry.counter("store.bytes_written"),
            tracer: Tracer::default(),
        }
    }

    /// Record `store.stage_block` / `store.commit_block_list` spans into
    /// `tracer` (the engine sets this before sharing the store).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }
}

impl<S: ObjectStore + ?Sized> StatsStore<S> {
    /// Current counter values.
    pub fn counts(&self) -> OpCounts {
        OpCounts {
            reads: self.reads.get(),
            puts: self.puts.get(),
            staged_blocks: self.staged.get(),
            commits: self.commits.get(),
            deletes: self.deletes.get(),
            lists: self.lists.get(),
            bytes_read: self.bytes_read.get(),
            bytes_written: self.bytes_written.get(),
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        for c in [
            &self.reads,
            &self.puts,
            &self.staged,
            &self.commits,
            &self.deletes,
            &self.lists,
            &self.bytes_read,
            &self.bytes_written,
        ] {
            c.reset();
        }
    }

    /// Access the wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: ObjectStore + ?Sized> ObjectStore for StatsStore<S> {
    fn put(&self, path: &BlobPath, data: Bytes, stamp: Stamp) -> StoreResult<()> {
        self.puts.inc();
        self.bytes_written.add(data.len() as u64);
        self.inner.put(path, data, stamp)
    }

    fn get(&self, path: &BlobPath) -> StoreResult<Bytes> {
        self.reads.inc();
        let data = self.inner.get(path)?;
        self.bytes_read.add(data.len() as u64);
        Ok(data)
    }

    fn get_range(&self, path: &BlobPath, range: Range<u64>) -> StoreResult<Bytes> {
        self.reads.inc();
        let data = self.inner.get_range(path, range)?;
        self.bytes_read.add(data.len() as u64);
        Ok(data)
    }

    fn head(&self, path: &BlobPath) -> StoreResult<BlobMeta> {
        self.inner.head(path)
    }

    fn delete(&self, path: &BlobPath) -> StoreResult<()> {
        self.deletes.inc();
        self.inner.delete(path)
    }

    fn list(&self, prefix: &str) -> StoreResult<Vec<BlobMeta>> {
        self.lists.inc();
        self.inner.list(prefix)
    }

    fn stage_block(
        &self,
        path: &BlobPath,
        block: BlockId,
        data: Bytes,
        stamp: Stamp,
    ) -> StoreResult<()> {
        self.staged.inc();
        self.bytes_written.add(data.len() as u64);
        let mut span = self.tracer.span("store.stage_block");
        span.attr("bytes", data.len());
        self.inner.stage_block(path, block, data, stamp)
    }

    fn commit_block_list(
        &self,
        path: &BlobPath,
        blocks: &[BlockId],
        stamp: Stamp,
    ) -> StoreResult<()> {
        self.commits.inc();
        let mut span = self.tracer.span("store.commit_block_list");
        span.attr("blocks", blocks.len());
        self.inner.commit_block_list(path, blocks, stamp)
    }

    fn committed_blocks(&self, path: &BlobPath) -> StoreResult<Vec<BlockId>> {
        self.inner.committed_blocks(path)
    }
}

impl<S: ObjectStore + ?Sized> ObjectStore for Arc<S> {
    fn put(&self, path: &BlobPath, data: Bytes, stamp: Stamp) -> StoreResult<()> {
        (**self).put(path, data, stamp)
    }
    fn get(&self, path: &BlobPath) -> StoreResult<Bytes> {
        (**self).get(path)
    }
    fn get_range(&self, path: &BlobPath, range: Range<u64>) -> StoreResult<Bytes> {
        (**self).get_range(path, range)
    }
    fn head(&self, path: &BlobPath) -> StoreResult<BlobMeta> {
        (**self).head(path)
    }
    fn delete(&self, path: &BlobPath) -> StoreResult<()> {
        (**self).delete(path)
    }
    fn list(&self, prefix: &str) -> StoreResult<Vec<BlobMeta>> {
        (**self).list(prefix)
    }
    fn stage_block(
        &self,
        path: &BlobPath,
        block: BlockId,
        data: Bytes,
        stamp: Stamp,
    ) -> StoreResult<()> {
        (**self).stage_block(path, block, data, stamp)
    }
    fn commit_block_list(
        &self,
        path: &BlobPath,
        blocks: &[BlockId],
        stamp: Stamp,
    ) -> StoreResult<()> {
        (**self).commit_block_list(path, blocks, stamp)
    }
    fn committed_blocks(&self, path: &BlobPath) -> StoreResult<Vec<BlockId>> {
        (**self).committed_blocks(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryStore;

    #[test]
    fn counts_every_operation_kind() {
        let s = StatsStore::new(MemoryStore::new());
        let p = BlobPath::new("a/b").unwrap();
        let m = BlobPath::new("a/m").unwrap();
        s.put(&p, Bytes::from_static(b"1234"), Stamp(1)).unwrap();
        s.get(&p).unwrap();
        s.get_range(&p, 0..2).unwrap();
        s.list("a/").unwrap();
        s.stage_block(&m, BlockId::new("x"), Bytes::from_static(b"56"), Stamp(1))
            .unwrap();
        s.commit_block_list(&m, &[BlockId::new("x")], Stamp(1))
            .unwrap();
        s.delete(&p).unwrap();
        let c = s.counts();
        assert_eq!(c.puts, 1);
        assert_eq!(c.reads, 2);
        assert_eq!(c.lists, 1);
        assert_eq!(c.staged_blocks, 1);
        assert_eq!(c.commits, 1);
        assert_eq!(c.deletes, 1);
        assert_eq!(c.bytes_written, 6);
        assert_eq!(c.bytes_read, 6);
        s.reset();
        assert_eq!(s.counts(), OpCounts::default());
    }

    #[test]
    fn registry_backed_counts_show_in_snapshot() {
        let registry = MetricsRegistry::new();
        let s = StatsStore::with_registry(MemoryStore::new(), &registry);
        let p = BlobPath::new("a/b").unwrap();
        s.put(&p, Bytes::from_static(b"1234"), Stamp(1)).unwrap();
        s.get(&p).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("store.puts"), 1);
        assert_eq!(snap.counter("store.reads"), 1);
        assert_eq!(snap.counter("store.bytes_read"), 4);
        // Local snapshot and registry view read the same atomics.
        assert_eq!(
            s.counts().bytes_written,
            snap.counter("store.bytes_written")
        );
    }
}
