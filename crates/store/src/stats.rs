//! Operation-counting wrapper used by the benchmark harness.

use crate::{BlobMeta, BlobPath, BlockId, ObjectStore, Stamp, StoreResult};
use bytes::Bytes;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Snapshot of operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// `get`/`get_range` calls.
    pub reads: u64,
    /// `put` calls.
    pub puts: u64,
    /// `stage_block` calls.
    pub staged_blocks: u64,
    /// `commit_block_list` calls.
    pub commits: u64,
    /// `delete` calls.
    pub deletes: u64,
    /// `list` calls.
    pub lists: u64,
    /// Bytes returned by reads.
    pub bytes_read: u64,
    /// Bytes accepted by puts and staged blocks.
    pub bytes_written: u64,
}

/// Transparent [`ObjectStore`] wrapper that counts operations and bytes.
///
/// The figure harnesses use these counters to report IO amplification — e.g.
/// the §5.2 checkpoint experiment shows how many manifest bytes a snapshot
/// reconstruction reads with and without checkpoints.
pub struct StatsStore<S> {
    inner: S,
    reads: AtomicU64,
    puts: AtomicU64,
    staged: AtomicU64,
    commits: AtomicU64,
    deletes: AtomicU64,
    lists: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

impl<S: ObjectStore> StatsStore<S> {
    /// Wrap `inner`.
    pub fn new(inner: S) -> Self {
        StatsStore {
            inner,
            reads: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            staged: AtomicU64::new(0),
            commits: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
            lists: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
        }
    }

    /// Current counter values.
    pub fn counts(&self) -> OpCounts {
        OpCounts {
            reads: self.reads.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            staged_blocks: self.staged.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            lists: self.lists.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        for c in [
            &self.reads,
            &self.puts,
            &self.staged,
            &self.commits,
            &self.deletes,
            &self.lists,
            &self.bytes_read,
            &self.bytes_written,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Access the wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: ObjectStore> ObjectStore for StatsStore<S> {
    fn put(&self, path: &BlobPath, data: Bytes, stamp: Stamp) -> StoreResult<()> {
        self.puts.fetch_add(1, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.inner.put(path, data, stamp)
    }

    fn get(&self, path: &BlobPath) -> StoreResult<Bytes> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        let data = self.inner.get(path)?;
        self.bytes_read
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        Ok(data)
    }

    fn get_range(&self, path: &BlobPath, range: Range<u64>) -> StoreResult<Bytes> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        let data = self.inner.get_range(path, range)?;
        self.bytes_read
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        Ok(data)
    }

    fn head(&self, path: &BlobPath) -> StoreResult<BlobMeta> {
        self.inner.head(path)
    }

    fn delete(&self, path: &BlobPath) -> StoreResult<()> {
        self.deletes.fetch_add(1, Ordering::Relaxed);
        self.inner.delete(path)
    }

    fn list(&self, prefix: &str) -> StoreResult<Vec<BlobMeta>> {
        self.lists.fetch_add(1, Ordering::Relaxed);
        self.inner.list(prefix)
    }

    fn stage_block(
        &self,
        path: &BlobPath,
        block: BlockId,
        data: Bytes,
        stamp: Stamp,
    ) -> StoreResult<()> {
        self.staged.fetch_add(1, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.inner.stage_block(path, block, data, stamp)
    }

    fn commit_block_list(
        &self,
        path: &BlobPath,
        blocks: &[BlockId],
        stamp: Stamp,
    ) -> StoreResult<()> {
        self.commits.fetch_add(1, Ordering::Relaxed);
        self.inner.commit_block_list(path, blocks, stamp)
    }

    fn committed_blocks(&self, path: &BlobPath) -> StoreResult<Vec<BlockId>> {
        self.inner.committed_blocks(path)
    }
}

impl<S: ObjectStore> ObjectStore for Arc<S> {
    fn put(&self, path: &BlobPath, data: Bytes, stamp: Stamp) -> StoreResult<()> {
        (**self).put(path, data, stamp)
    }
    fn get(&self, path: &BlobPath) -> StoreResult<Bytes> {
        (**self).get(path)
    }
    fn get_range(&self, path: &BlobPath, range: Range<u64>) -> StoreResult<Bytes> {
        (**self).get_range(path, range)
    }
    fn head(&self, path: &BlobPath) -> StoreResult<BlobMeta> {
        (**self).head(path)
    }
    fn delete(&self, path: &BlobPath) -> StoreResult<()> {
        (**self).delete(path)
    }
    fn list(&self, prefix: &str) -> StoreResult<Vec<BlobMeta>> {
        (**self).list(prefix)
    }
    fn stage_block(
        &self,
        path: &BlobPath,
        block: BlockId,
        data: Bytes,
        stamp: Stamp,
    ) -> StoreResult<()> {
        (**self).stage_block(path, block, data, stamp)
    }
    fn commit_block_list(
        &self,
        path: &BlobPath,
        blocks: &[BlockId],
        stamp: Stamp,
    ) -> StoreResult<()> {
        (**self).commit_block_list(path, blocks, stamp)
    }
    fn committed_blocks(&self, path: &BlobPath) -> StoreResult<Vec<BlockId>> {
        (**self).committed_blocks(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryStore;

    #[test]
    fn counts_every_operation_kind() {
        let s = StatsStore::new(MemoryStore::new());
        let p = BlobPath::new("a/b").unwrap();
        let m = BlobPath::new("a/m").unwrap();
        s.put(&p, Bytes::from_static(b"1234"), Stamp(1)).unwrap();
        s.get(&p).unwrap();
        s.get_range(&p, 0..2).unwrap();
        s.list("a/").unwrap();
        s.stage_block(&m, BlockId::new("x"), Bytes::from_static(b"56"), Stamp(1))
            .unwrap();
        s.commit_block_list(&m, &[BlockId::new("x")], Stamp(1))
            .unwrap();
        s.delete(&p).unwrap();
        let c = s.counts();
        assert_eq!(c.puts, 1);
        assert_eq!(c.reads, 2);
        assert_eq!(c.lists, 1);
        assert_eq!(c.staged_blocks, 1);
        assert_eq!(c.commits, 1);
        assert_eq!(c.deletes, 1);
        assert_eq!(c.bytes_written, 6);
        assert_eq!(c.bytes_read, 6);
        s.reset();
        assert_eq!(s.counts(), OpCounts::default());
    }
}
