//! Deterministic fault injection for retry-path testing.

use crate::{BlobMeta, BlobPath, BlockId, ObjectStore, Stamp, StoreError, StoreResult};
use bytes::Bytes;
use parking_lot::Mutex;
use polaris_obs::{Counter, MetricsRegistry, Tracer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// [`ObjectStore`] wrapper that fails a configurable fraction of *write*
/// operations with [`StoreError::Transient`].
///
/// The paper's resilience claim (§4.3) is that a failed write task can be
/// re-scheduled without failing the transaction, because stale blocks are
/// never committed. Tests wrap a [`MemoryStore`](crate::MemoryStore) in a
/// `FaultyStore` and assert that transactions still commit with correct
/// content under injected faults.
///
/// Faults are driven by a seeded RNG so failures are reproducible. Reads are
/// never failed by default (immutable committed data is assumed reliable);
/// set `fail_reads` to exercise read retries too.
pub struct FaultyStore<S> {
    inner: S,
    rng: Mutex<StdRng>,
    /// Probability in `[0, 1]` that a write op fails.
    write_failure_rate: Mutex<f64>,
    /// Probability in `[0, 1]` that a read op fails.
    read_failure_rate: Mutex<f64>,
    injected_write_faults: Counter,
    injected_read_faults: Counter,
    tracer: Mutex<Tracer>,
}

impl<S: ObjectStore> FaultyStore<S> {
    /// Wrap `inner`, failing `write_failure_rate` of writes, seeded RNG.
    pub fn new(inner: S, write_failure_rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&write_failure_rate),
            "failure rate must be a probability"
        );
        FaultyStore {
            inner,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            write_failure_rate: Mutex::new(write_failure_rate),
            read_failure_rate: Mutex::new(0.0),
            injected_write_faults: Counter::new(),
            injected_read_faults: Counter::new(),
            tracer: Mutex::new(Tracer::default()),
        }
    }

    /// Also fail `rate` of read operations.
    pub fn with_read_failures(self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "failure rate must be a probability"
        );
        *self.read_failure_rate.lock() = rate;
        self
    }

    /// Change the write failure rate mid-run — chaos tests turn faults on
    /// for the phase under test and back off for deterministic teardown.
    pub fn set_write_failure_rate(&self, rate: f64) {
        assert!(
            (0.0..=1.0).contains(&rate),
            "failure rate must be a probability"
        );
        *self.write_failure_rate.lock() = rate;
    }

    /// Change the read failure rate mid-run, e.g. after fault-free setup
    /// so only the scans under test face injected chunk-fetch errors.
    pub fn set_read_failure_rate(&self, rate: f64) {
        assert!(
            (0.0..=1.0).contains(&rate),
            "failure rate must be a probability"
        );
        *self.read_failure_rate.lock() = rate;
    }

    /// Access the wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Faults injected so far as `(write_faults, read_faults)`.
    pub fn injected_faults(&self) -> (u64, u64) {
        (
            self.injected_write_faults.get(),
            self.injected_read_faults.get(),
        )
    }

    /// Publish the fault counters into `registry` so chaos harnesses can see
    /// how many failures they actually provoked.
    pub fn bind_metrics(&self, registry: &MetricsRegistry) {
        registry.adopt_counter("store.injected_write_faults", &self.injected_write_faults);
        registry.adopt_counter("store.injected_read_faults", &self.injected_read_faults);
    }

    /// Record every injected fault as a `store.injected_fault` instant
    /// event in `tracer`, parented under whatever span was executing.
    pub fn bind_tracer(&self, tracer: &Tracer) {
        *self.tracer.lock() = tracer.clone();
    }

    fn maybe_fail(&self, rate: f64, counter: &Counter, op: &str) -> StoreResult<()> {
        if rate > 0.0 && self.rng.lock().gen_bool(rate) {
            counter.inc();
            self.tracer
                .lock()
                .instant("store.injected_fault", vec![("op", op.into())]);
            return Err(StoreError::Transient {
                detail: format!("injected fault during {op}"),
            });
        }
        Ok(())
    }

    fn maybe_fail_write(&self, op: &str) -> StoreResult<()> {
        let rate = *self.write_failure_rate.lock();
        self.maybe_fail(rate, &self.injected_write_faults, op)
    }

    fn maybe_fail_read(&self, op: &str) -> StoreResult<()> {
        let rate = *self.read_failure_rate.lock();
        self.maybe_fail(rate, &self.injected_read_faults, op)
    }
}

impl<S: ObjectStore> ObjectStore for FaultyStore<S> {
    fn put(&self, path: &BlobPath, data: Bytes, stamp: Stamp) -> StoreResult<()> {
        self.maybe_fail_write("put")?;
        self.inner.put(path, data, stamp)
    }

    fn get(&self, path: &BlobPath) -> StoreResult<Bytes> {
        self.maybe_fail_read("get")?;
        self.inner.get(path)
    }

    fn get_range(&self, path: &BlobPath, range: Range<u64>) -> StoreResult<Bytes> {
        self.maybe_fail_read("get_range")?;
        self.inner.get_range(path, range)
    }

    fn head(&self, path: &BlobPath) -> StoreResult<BlobMeta> {
        self.inner.head(path)
    }

    fn delete(&self, path: &BlobPath) -> StoreResult<()> {
        self.maybe_fail_write("delete")?;
        self.inner.delete(path)
    }

    fn list(&self, prefix: &str) -> StoreResult<Vec<BlobMeta>> {
        self.maybe_fail_read("list")?;
        self.inner.list(prefix)
    }

    fn stage_block(
        &self,
        path: &BlobPath,
        block: BlockId,
        data: Bytes,
        stamp: Stamp,
    ) -> StoreResult<()> {
        self.maybe_fail_write("stage_block")?;
        self.inner.stage_block(path, block, data, stamp)
    }

    fn commit_block_list(
        &self,
        path: &BlobPath,
        blocks: &[BlockId],
        stamp: Stamp,
    ) -> StoreResult<()> {
        self.maybe_fail_write("commit_block_list")?;
        self.inner.commit_block_list(path, blocks, stamp)
    }

    fn committed_blocks(&self, path: &BlobPath) -> StoreResult<Vec<BlockId>> {
        self.inner.committed_blocks(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryStore;

    #[test]
    fn zero_rate_never_fails() {
        let s = FaultyStore::new(MemoryStore::new(), 0.0, 1);
        let p = BlobPath::new("a/b").unwrap();
        for _ in 0..100 {
            s.put(&p, Bytes::from_static(b"x"), Stamp(1)).unwrap();
        }
    }

    #[test]
    fn full_rate_always_fails_writes_but_not_reads() {
        let s = FaultyStore::new(MemoryStore::new(), 1.0, 1);
        let p = BlobPath::new("a/b").unwrap();
        assert!(matches!(
            s.put(&p, Bytes::from_static(b"x"), Stamp(1)),
            Err(StoreError::Transient { .. })
        ));
        // Seed the inner store directly, then read through the wrapper.
        s.inner()
            .put(&p, Bytes::from_static(b"x"), Stamp(1))
            .unwrap();
        assert!(s.get(&p).is_ok());
    }

    #[test]
    fn same_seed_gives_same_fault_sequence() {
        let run = |seed| {
            let s = FaultyStore::new(MemoryStore::new(), 0.5, seed);
            let p = BlobPath::new("a/b").unwrap();
            (0..64)
                .map(|_| s.put(&p, Bytes::from_static(b"x"), Stamp(1)).is_ok())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn read_failures_opt_in() {
        let s = FaultyStore::new(MemoryStore::new(), 0.0, 1).with_read_failures(1.0);
        let p = BlobPath::new("a/b").unwrap();
        s.put(&p, Bytes::from_static(b"x"), Stamp(1)).unwrap();
        assert!(matches!(s.get(&p), Err(StoreError::Transient { .. })));
    }
}
