//! Validated blob paths.

use crate::{StoreError, StoreResult};
use std::fmt;

/// A validated, `/`-separated, relative blob path.
///
/// Paths are the unit of naming in OneLake: every data file, delete vector,
/// transaction manifest and checkpoint is addressed by one. Validation
/// rejects empty paths, absolute paths, `.`/`..` segments and empty segments
/// so that [`LocalFsStore`](crate::LocalFsStore) can map them to the
/// filesystem without escaping its root.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlobPath(String);

impl BlobPath {
    /// Validate and wrap a raw path.
    pub fn new(raw: impl Into<String>) -> StoreResult<Self> {
        let raw = raw.into();
        if raw.is_empty() {
            return Err(StoreError::InvalidPath {
                raw,
                reason: "empty path",
            });
        }
        if raw.starts_with('/') {
            return Err(StoreError::InvalidPath {
                raw,
                reason: "absolute path",
            });
        }
        if raw.ends_with('/') {
            return Err(StoreError::InvalidPath {
                raw,
                reason: "trailing slash",
            });
        }
        for seg in raw.split('/') {
            if seg.is_empty() {
                return Err(StoreError::InvalidPath {
                    raw,
                    reason: "empty segment",
                });
            }
            if seg == "." || seg == ".." {
                return Err(StoreError::InvalidPath {
                    raw,
                    reason: "dot segment",
                });
            }
        }
        Ok(BlobPath(raw))
    }

    /// The raw path string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Build a child path: `self/segment`.
    pub fn child(&self, segment: &str) -> StoreResult<BlobPath> {
        BlobPath::new(format!("{}/{}", self.0, segment))
    }

    /// The final path segment (file name).
    pub fn file_name(&self) -> &str {
        self.0.rsplit('/').next().unwrap_or(&self.0)
    }

    /// Does this path start with `prefix`?
    pub fn starts_with(&self, prefix: &str) -> bool {
        self.0.starts_with(prefix)
    }
}

impl fmt::Display for BlobPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl AsRef<str> for BlobPath {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_paths() {
        for p in ["a", "a/b", "db/tbl/_log/000.json", "x-y_z.parquet"] {
            assert!(BlobPath::new(p).is_ok(), "{p} should be valid");
        }
    }

    #[test]
    fn rejects_invalid_paths() {
        for p in ["", "/abs", "a//b", "a/", "./a", "a/../b", "..", "."] {
            assert!(BlobPath::new(p).is_err(), "{p} should be invalid");
        }
    }

    #[test]
    fn child_and_file_name() {
        let p = BlobPath::new("db/tbl").unwrap();
        let c = p.child("f.parquet").unwrap();
        assert_eq!(c.as_str(), "db/tbl/f.parquet");
        assert_eq!(c.file_name(), "f.parquet");
        assert_eq!(BlobPath::new("solo").unwrap().file_name(), "solo");
        assert!(p.child("..").is_err());
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = BlobPath::new("a/1").unwrap();
        let b = BlobPath::new("a/2").unwrap();
        assert!(a < b);
    }
}
