//! # polaris-store
//!
//! Object-store substrate for Polaris, standing in for ADLS / OneLake.
//!
//! The paper's transaction-manifest write protocol (§3.2.2) relies on the
//! Azure *Block Blob* API: back-end nodes independently **stage** blocks
//! against a blob (invisible to readers), return the block IDs to the DCP,
//! and the SQL FE makes the content visible atomically with a single
//! **commit block list** call. Blocks staged but omitted from the committed
//! list are discarded by storage — which is exactly how Polaris makes task
//! retries and aborted transactions free: their output is simply never
//! referenced.
//!
//! This crate reproduces those semantics faithfully:
//!
//! * [`ObjectStore`] — the storage trait (blob CRUD + block-blob protocol).
//! * [`MemoryStore`] — in-memory backend, the default for tests and benches.
//! * [`LocalFsStore`] — on-disk backend with identical semantics.
//! * [`CachingStore`] — read-through blob cache (the BE data cache of
//!   §3.3 — coherent for free thanks to file immutability).
//! * [`StatsStore`] — transparent wrapper counting operations and bytes.
//! * [`FaultyStore`] — wrapper injecting deterministic transient faults, used
//!   to exercise the DCP's task-retry path.
//! * [`ChaosStore`] — wrapper simulating process death at an exact storage
//!   operation (the kill-anywhere crash-recovery harness).
//! * [`LatencyStore`] — wrapper adding a simple cloud-latency cost model.
//!
//! Every blob carries a creation [`Stamp`] assigned by its writer. The paper
//! uses this stamp for garbage collection (§5.3): a file whose stamp is below
//! the minimum begin-timestamp of every active transaction and that is not
//! referenced by any manifest is guaranteed to belong to an aborted
//! transaction and can be deleted.

mod block;
mod cache;
mod chaos;
mod error;
mod faulty;
mod latency;
mod local;
mod memory;
mod path;
mod stats;

pub use block::BlockId;
pub use cache::CachingStore;
pub use chaos::ChaosStore;
pub use error::{StoreError, StoreResult};
pub use faulty::FaultyStore;
pub use latency::{LatencyModel, LatencyStore};
pub use local::LocalFsStore;
pub use memory::MemoryStore;
pub use path::BlobPath;
pub use stats::{OpCounts, StatsStore};

/// Re-exported so callers of [`ObjectStore::put`] need no direct `bytes`
/// dependency.
pub use bytes::Bytes;
use std::ops::Range;
use std::sync::Arc;

/// Logical creation timestamp stamped onto every blob by the transaction
/// (or system task) that created it.
///
/// Garbage collection (§5.3) compares this stamp against the minimum begin
/// timestamp of all active transactions to decide whether an unreferenced
/// file is definitely orphaned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Stamp(pub u64);

impl Stamp {
    /// Stamp used by system-internal writes that are not tied to a
    /// transaction (e.g. checkpoints written by the STO).
    pub const SYSTEM: Stamp = Stamp(0);
}

/// Metadata describing a committed blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlobMeta {
    /// Full path of the blob.
    pub path: BlobPath,
    /// Committed size in bytes.
    pub size: u64,
    /// Creation stamp supplied by the writer.
    pub stamp: Stamp,
}

/// Storage abstraction over ADLS/OneLake used by every Polaris component.
///
/// Semantics mirror Azure Block Blobs:
///
/// * [`put`](ObjectStore::put) atomically creates/replaces a blob.
/// * [`stage_block`](ObjectStore::stage_block) uploads an *uncommitted* block
///   that is invisible to readers.
/// * [`commit_block_list`](ObjectStore::commit_block_list) atomically makes
///   the blob's content the concatenation of the listed blocks. Previously
///   committed blocks may be re-listed (Polaris appends statement blocks to a
///   transaction manifest this way); staged blocks absent from the list are
///   discarded.
pub trait ObjectStore: Send + Sync {
    /// Atomically create or replace a blob with `data`.
    fn put(&self, path: &BlobPath, data: Bytes, stamp: Stamp) -> StoreResult<()>;

    /// Read a committed blob in full.
    fn get(&self, path: &BlobPath) -> StoreResult<Bytes>;

    /// Read a byte range of a committed blob.
    fn get_range(&self, path: &BlobPath, range: Range<u64>) -> StoreResult<Bytes> {
        let data = self.get(path)?;
        let len = data.len() as u64;
        if range.start > range.end || range.end > len {
            return Err(StoreError::InvalidRange {
                path: path.clone(),
                start: range.start,
                end: range.end,
                len,
            });
        }
        Ok(data.slice(range.start as usize..range.end as usize))
    }

    /// Metadata for a committed blob.
    fn head(&self, path: &BlobPath) -> StoreResult<BlobMeta>;

    /// Does a committed blob exist at `path`?
    fn exists(&self, path: &BlobPath) -> StoreResult<bool> {
        match self.head(path) {
            Ok(_) => Ok(true),
            Err(StoreError::NotFound { .. }) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Delete a blob (committed content and any staged blocks).
    ///
    /// Deleting a non-existent blob is an error, mirroring ADLS.
    fn delete(&self, path: &BlobPath) -> StoreResult<()>;

    /// List committed blobs whose path starts with `prefix`, in
    /// lexicographic path order.
    fn list(&self, prefix: &str) -> StoreResult<Vec<BlobMeta>>;

    /// Stage an uncommitted block against `path`.
    ///
    /// The blob need not exist yet. Staged blocks are invisible until
    /// committed; re-staging an existing block ID replaces its payload
    /// (Azure semantics — the last staged payload wins).
    fn stage_block(
        &self,
        path: &BlobPath,
        block: BlockId,
        data: Bytes,
        stamp: Stamp,
    ) -> StoreResult<()>;

    /// Atomically set the blob's content to the concatenation of `blocks`.
    ///
    /// Every listed ID must be either currently staged or already part of the
    /// committed list. Staged blocks not listed are discarded. An empty list
    /// commits an empty blob.
    fn commit_block_list(
        &self,
        path: &BlobPath,
        blocks: &[BlockId],
        stamp: Stamp,
    ) -> StoreResult<()>;

    /// IDs of the currently committed block list (empty if the blob was
    /// written via [`put`](ObjectStore::put)).
    fn committed_blocks(&self, path: &BlobPath) -> StoreResult<Vec<BlockId>>;
}

/// Shared, dynamically dispatched handle to an object store.
pub type StoreRef = Arc<dyn ObjectStore>;

#[cfg(test)]
pub(crate) mod trait_tests {
    use super::*;

    /// Conformance suite run against every backend.
    pub(crate) fn conformance(store: &dyn ObjectStore) {
        let p = BlobPath::new("tbl/data/file1.bin").unwrap();
        // put / get / head
        store
            .put(&p, Bytes::from_static(b"hello"), Stamp(7))
            .unwrap();
        assert_eq!(store.get(&p).unwrap(), Bytes::from_static(b"hello"));
        let meta = store.head(&p).unwrap();
        assert_eq!(meta.size, 5);
        assert_eq!(meta.stamp, Stamp(7));
        // range
        assert_eq!(
            store.get_range(&p, 1..4).unwrap(),
            Bytes::from_static(b"ell")
        );
        assert!(matches!(
            store.get_range(&p, 2..9),
            Err(StoreError::InvalidRange { .. })
        ));
        // overwrite
        store.put(&p, Bytes::from_static(b"x"), Stamp(8)).unwrap();
        assert_eq!(store.head(&p).unwrap().size, 1);

        // block-blob protocol
        let m = BlobPath::new("tbl/_log/x1.json").unwrap();
        let b1 = BlockId::new("b1");
        let b2 = BlockId::new("b2");
        let b3 = BlockId::new("b3");
        store
            .stage_block(&m, b1.clone(), Bytes::from_static(b"AA"), Stamp(9))
            .unwrap();
        store
            .stage_block(&m, b2.clone(), Bytes::from_static(b"BB"), Stamp(9))
            .unwrap();
        store
            .stage_block(&m, b3.clone(), Bytes::from_static(b"CC"), Stamp(9))
            .unwrap();
        // staged but uncommitted => invisible
        assert!(!store.exists(&m).unwrap());
        assert!(matches!(store.get(&m), Err(StoreError::NotFound { .. })));
        // commit a subset, out of staging order
        store
            .commit_block_list(&m, &[b2.clone(), b1.clone()], Stamp(9))
            .unwrap();
        assert_eq!(store.get(&m).unwrap(), Bytes::from_static(b"BBAA"));
        assert_eq!(
            store.committed_blocks(&m).unwrap(),
            vec![b2.clone(), b1.clone()]
        );
        // b3 was discarded: committing it now must fail
        assert!(matches!(
            store.commit_block_list(&m, std::slice::from_ref(&b3), Stamp(9)),
            Err(StoreError::UnknownBlock { .. })
        ));
        // append pattern: stage a new block, re-commit superset
        let b4 = BlockId::new("b4");
        store
            .stage_block(&m, b4.clone(), Bytes::from_static(b"DD"), Stamp(9))
            .unwrap();
        store
            .commit_block_list(&m, &[b2.clone(), b1.clone(), b4.clone()], Stamp(9))
            .unwrap();
        assert_eq!(store.get(&m).unwrap(), Bytes::from_static(b"BBAADD"));
        // committed blocks can be re-ordered / dropped by a later commit
        store
            .commit_block_list(&m, std::slice::from_ref(&b4), Stamp(9))
            .unwrap();
        assert_eq!(store.get(&m).unwrap(), Bytes::from_static(b"DD"));

        // list
        let listed = store.list("tbl/").unwrap();
        assert_eq!(listed.len(), 2);
        assert!(listed.windows(2).all(|w| w[0].path < w[1].path));
        assert_eq!(store.list("tbl/_log/").unwrap().len(), 1);
        assert!(store.list("nope/").unwrap().is_empty());

        // delete
        store.delete(&p).unwrap();
        assert!(!store.exists(&p).unwrap());
        assert!(matches!(store.delete(&p), Err(StoreError::NotFound { .. })));

        // empty commit list => empty blob
        let e = BlobPath::new("tbl/_log/empty.json").unwrap();
        store.commit_block_list(&e, &[], Stamp(1)).unwrap();
        assert_eq!(store.get(&e).unwrap().len(), 0);
    }
}
