//! On-disk object store backend.

use crate::{BlobMeta, BlobPath, BlockId, ObjectStore, Stamp, StoreError, StoreResult};
use bytes::Bytes;
use parking_lot::Mutex;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Filesystem-backed [`ObjectStore`] with the same visibility semantics as
/// [`MemoryStore`](crate::MemoryStore).
///
/// Layout under the root directory:
///
/// ```text
/// <root>/objects/<blob path>          committed content
/// <root>/objects/<blob path>.stamp    8-byte little-endian creation stamp
/// <root>/staging/<blob path>/<id>     staged block payloads
/// <root>/staging/<blob path>/.list    committed block list (one ID per line)
/// ```
///
/// Commits write the concatenated content to a temp file and rename it into
/// place so readers never observe partial content — mirroring the atomicity
/// of ADLS `commit_block_list`. A coarse mutex serializes mutations; reads
/// of committed blobs go straight to the filesystem.
pub struct LocalFsStore {
    root: PathBuf,
    write_lock: Mutex<()>,
}

impl LocalFsStore {
    /// Open (and create if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> StoreResult<Self> {
        let root = root.into();
        fs::create_dir_all(root.join("objects"))?;
        fs::create_dir_all(root.join("staging"))?;
        Ok(LocalFsStore {
            root,
            write_lock: Mutex::new(()),
        })
    }

    fn object_path(&self, path: &BlobPath) -> PathBuf {
        self.root.join("objects").join(path.as_str())
    }

    fn stamp_path(&self, path: &BlobPath) -> PathBuf {
        let mut p = self.object_path(path).into_os_string();
        p.push(".stamp");
        PathBuf::from(p)
    }

    fn staging_dir(&self, path: &BlobPath) -> PathBuf {
        self.root.join("staging").join(path.as_str())
    }

    fn write_atomic(&self, target: &Path, data: &[u8]) -> StoreResult<()> {
        let parent = target.parent().expect("object paths always have a parent");
        fs::create_dir_all(parent)?;
        let tmp = parent.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            target
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("blob")
        ));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(data)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, target)?;
        Ok(())
    }

    fn read_stamp(&self, path: &BlobPath) -> Stamp {
        fs::read(self.stamp_path(path))
            .ok()
            .and_then(|b| b.try_into().ok().map(u64::from_le_bytes))
            .map(Stamp)
            .unwrap_or(Stamp::SYSTEM)
    }

    fn write_stamp(&self, path: &BlobPath, stamp: Stamp) -> StoreResult<()> {
        self.write_atomic(&self.stamp_path(path), &stamp.0.to_le_bytes())
    }

    fn read_committed_list(&self, path: &BlobPath) -> Vec<BlockId> {
        fs::read_to_string(self.staging_dir(path).join(".list"))
            .map(|s| s.lines().map(BlockId::new).collect())
            .unwrap_or_default()
    }
}

impl ObjectStore for LocalFsStore {
    fn put(&self, path: &BlobPath, data: Bytes, stamp: Stamp) -> StoreResult<()> {
        let _g = self.write_lock.lock();
        self.write_atomic(&self.object_path(path), &data)?;
        self.write_stamp(path, stamp)?;
        // Direct puts discard any block state.
        let staging = self.staging_dir(path);
        if staging.exists() {
            fs::remove_dir_all(&staging)?;
        }
        Ok(())
    }

    fn get(&self, path: &BlobPath) -> StoreResult<Bytes> {
        match fs::read(self.object_path(path)) {
            Ok(data) => Ok(Bytes::from(data)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StoreError::NotFound { path: path.clone() })
            }
            Err(e) => Err(e.into()),
        }
    }

    fn head(&self, path: &BlobPath) -> StoreResult<BlobMeta> {
        match fs::metadata(self.object_path(path)) {
            Ok(meta) if meta.is_file() => Ok(BlobMeta {
                path: path.clone(),
                size: meta.len(),
                stamp: self.read_stamp(path),
            }),
            Ok(_) => Err(StoreError::NotFound { path: path.clone() }),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StoreError::NotFound { path: path.clone() })
            }
            Err(e) => Err(e.into()),
        }
    }

    fn delete(&self, path: &BlobPath) -> StoreResult<()> {
        let _g = self.write_lock.lock();
        let obj = self.object_path(path);
        let existed_committed = obj.is_file();
        if existed_committed {
            fs::remove_file(&obj)?;
            let _ = fs::remove_file(self.stamp_path(path));
        }
        let staging = self.staging_dir(path);
        let existed_staged = staging.exists();
        if existed_staged {
            fs::remove_dir_all(&staging)?;
        }
        if !existed_committed && !existed_staged {
            return Err(StoreError::NotFound { path: path.clone() });
        }
        Ok(())
    }

    fn list(&self, prefix: &str) -> StoreResult<Vec<BlobMeta>> {
        let root = self.root.join("objects");
        let mut out = Vec::new();
        let mut stack = vec![root.clone()];
        while let Some(dir) = stack.pop() {
            let entries = match fs::read_dir(&dir) {
                Ok(e) => e,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e.into()),
            };
            for entry in entries {
                let entry = entry?;
                let p = entry.path();
                if p.is_dir() {
                    stack.push(p);
                    continue;
                }
                let rel = p
                    .strip_prefix(&root)
                    .expect("listed entries live under the objects root");
                let Some(rel) = rel.to_str() else { continue };
                if rel.ends_with(".stamp") || rel.contains("/.tmp-") || rel.starts_with(".tmp-") {
                    continue;
                }
                if !rel.starts_with(prefix) {
                    continue;
                }
                let path = BlobPath::new(rel)?;
                let size = entry.metadata()?.len();
                let stamp = self.read_stamp(&path);
                out.push(BlobMeta { path, size, stamp });
            }
        }
        out.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(out)
    }

    fn stage_block(
        &self,
        path: &BlobPath,
        block: BlockId,
        data: Bytes,
        stamp: Stamp,
    ) -> StoreResult<()> {
        let _g = self.write_lock.lock();
        let dir = self.staging_dir(path);
        fs::create_dir_all(&dir)?;
        self.write_atomic(&dir.join(block.as_str()), &data)?;
        if !self.object_path(path).is_file() {
            self.write_stamp(path, stamp)?;
        }
        Ok(())
    }

    fn commit_block_list(
        &self,
        path: &BlobPath,
        blocks: &[BlockId],
        stamp: Stamp,
    ) -> StoreResult<()> {
        let _g = self.write_lock.lock();
        let dir = self.staging_dir(path);
        // Validate and gather payloads before touching the committed object.
        let mut content = Vec::new();
        for id in blocks {
            let payload = fs::read(dir.join(id.as_str())).map_err(|e| {
                if e.kind() == std::io::ErrorKind::NotFound {
                    StoreError::UnknownBlock {
                        path: path.clone(),
                        block: id.clone(),
                    }
                } else {
                    e.into()
                }
            })?;
            content.extend_from_slice(&payload);
        }
        self.write_atomic(&self.object_path(path), &content)?;
        if !self.stamp_path(path).is_file() {
            self.write_stamp(path, stamp)?;
        }
        // Record the committed list and discard unreferenced staged blocks.
        fs::create_dir_all(&dir)?;
        let list = blocks
            .iter()
            .map(|b| b.as_str())
            .collect::<Vec<_>>()
            .join("\n");
        self.write_atomic(&dir.join(".list"), list.as_bytes())?;
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name == ".list" || name.starts_with(".tmp-") {
                continue;
            }
            if !blocks.iter().any(|b| b.as_str() == name) {
                fs::remove_file(entry.path())?;
            }
        }
        Ok(())
    }

    fn committed_blocks(&self, path: &BlobPath) -> StoreResult<Vec<BlockId>> {
        if !self.object_path(path).is_file() {
            return Err(StoreError::NotFound { path: path.clone() });
        }
        Ok(self.read_committed_list(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trait_tests::conformance;

    fn temp_root(tag: &str) -> PathBuf {
        let p =
            std::env::temp_dir().join(format!("polaris-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn conforms_to_object_store_semantics() {
        let root = temp_root("conformance");
        let store = LocalFsStore::open(&root).unwrap();
        conformance(&store);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn content_survives_reopen() {
        let root = temp_root("reopen");
        {
            let store = LocalFsStore::open(&root).unwrap();
            let p = BlobPath::new("db/t/f1").unwrap();
            store
                .put(&p, Bytes::from_static(b"durable"), Stamp(42))
                .unwrap();
        }
        let store = LocalFsStore::open(&root).unwrap();
        let p = BlobPath::new("db/t/f1").unwrap();
        assert_eq!(store.get(&p).unwrap(), Bytes::from_static(b"durable"));
        assert_eq!(store.head(&p).unwrap().stamp, Stamp(42));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn staged_blocks_survive_reopen_until_committed() {
        let root = temp_root("staged");
        let b = BlockId::new("b0");
        let p = BlobPath::new("db/t/_log/m0.json").unwrap();
        {
            let store = LocalFsStore::open(&root).unwrap();
            store
                .stage_block(&p, b.clone(), Bytes::from_static(b"zz"), Stamp(5))
                .unwrap();
        }
        let store = LocalFsStore::open(&root).unwrap();
        assert!(!store.exists(&p).unwrap());
        store.commit_block_list(&p, &[b], Stamp(5)).unwrap();
        assert_eq!(store.get(&p).unwrap(), Bytes::from_static(b"zz"));
        assert_eq!(store.head(&p).unwrap().stamp, Stamp(5));
        let _ = fs::remove_dir_all(&root);
    }
}
