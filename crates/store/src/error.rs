//! Error type for object-store operations.

use crate::{BlobPath, BlockId};
use std::fmt;

/// Result alias for store operations.
pub type StoreResult<T> = Result<T, StoreError>;

/// Errors surfaced by [`ObjectStore`](crate::ObjectStore) implementations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The blob does not exist (or has only uncommitted staged blocks).
    NotFound {
        /// Path that was requested.
        path: BlobPath,
    },
    /// A block ID in a commit list is neither staged nor committed.
    UnknownBlock {
        /// Blob being committed.
        path: BlobPath,
        /// The offending block ID.
        block: BlockId,
    },
    /// A byte range fell outside the blob.
    InvalidRange {
        /// Path that was requested.
        path: BlobPath,
        /// Requested range start.
        start: u64,
        /// Requested range end (exclusive).
        end: u64,
        /// Actual blob length.
        len: u64,
    },
    /// A path failed validation (empty, absolute, or contains `..`).
    InvalidPath {
        /// The rejected raw path.
        raw: String,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// Transient fault injected by [`FaultyStore`](crate::FaultyStore) or a
    /// real I/O failure in [`LocalFsStore`](crate::LocalFsStore). Callers are
    /// expected to retry idempotent operations.
    Transient {
        /// Description of the fault.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotFound { path } => write!(f, "blob not found: {path}"),
            StoreError::UnknownBlock { path, block } => {
                write!(f, "unknown block {block} in commit list for {path}")
            }
            StoreError::InvalidRange {
                path,
                start,
                end,
                len,
            } => write!(f, "invalid range {start}..{end} for {path} of length {len}"),
            StoreError::InvalidPath { raw, reason } => {
                write!(f, "invalid blob path {raw:?}: {reason}")
            }
            StoreError::Transient { detail } => write!(f, "transient storage fault: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Transient {
            detail: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let p = BlobPath::new("a/b").unwrap();
        let s = StoreError::NotFound { path: p.clone() }.to_string();
        assert!(s.contains("a/b"));
        let s = StoreError::UnknownBlock {
            path: p.clone(),
            block: BlockId::new("blk"),
        }
        .to_string();
        assert!(s.contains("blk"));
        let s = StoreError::InvalidRange {
            path: p,
            start: 3,
            end: 9,
            len: 5,
        }
        .to_string();
        assert!(s.contains("3..9"));
    }

    #[test]
    fn io_error_maps_to_transient() {
        let io = std::io::Error::other("disk on fire");
        let e: StoreError = io.into();
        assert!(matches!(e, StoreError::Transient { .. }));
        assert!(e.to_string().contains("disk on fire"));
    }
}
