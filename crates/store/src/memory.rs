//! In-memory object store backend.

use crate::{BlobMeta, BlobPath, BlockId, ObjectStore, Stamp, StoreError, StoreResult};
use bytes::{Bytes, BytesMut};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};

/// Per-blob state: committed content plus the block machinery behind it.
#[derive(Debug, Default)]
struct BlobState {
    /// Concatenation of the committed block list (or the `put` payload).
    committed: Option<Bytes>,
    /// Creation stamp recorded at first write.
    stamp: Stamp,
    /// Payloads of blocks that are staged or referenced by the committed
    /// list. Committed block payloads are retained so later commits can
    /// re-list them (the "append" pattern).
    blocks: HashMap<BlockId, Bytes>,
    /// Currently committed block list, in order.
    committed_list: Vec<BlockId>,
    /// IDs staged since the last commit (discarded if not committed).
    staged: Vec<BlockId>,
}

/// In-memory [`ObjectStore`]. Cheap to clone via `Arc`; all operations are
/// linearizable under an internal `RwLock`.
///
/// This is the default backend for tests and benchmarks: the paper's
/// correctness story never depends on durability, only on the *visibility*
/// semantics of the block-blob protocol, which this backend implements
/// exactly.
#[derive(Debug, Default)]
pub struct MemoryStore {
    blobs: RwLock<BTreeMap<BlobPath, BlobState>>,
}

impl MemoryStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of committed blobs (staged-only blobs are excluded).
    pub fn committed_count(&self) -> usize {
        self.blobs
            .read()
            .values()
            .filter(|b| b.committed.is_some())
            .count()
    }

    /// Total committed bytes across all blobs.
    pub fn committed_bytes(&self) -> u64 {
        self.blobs
            .read()
            .values()
            .filter_map(|b| b.committed.as_ref().map(|c| c.len() as u64))
            .sum()
    }
}

impl ObjectStore for MemoryStore {
    fn put(&self, path: &BlobPath, data: Bytes, stamp: Stamp) -> StoreResult<()> {
        let mut blobs = self.blobs.write();
        let state = blobs.entry(path.clone()).or_default();
        state.committed = Some(data);
        state.stamp = stamp;
        state.blocks.clear();
        state.committed_list.clear();
        state.staged.clear();
        Ok(())
    }

    fn get(&self, path: &BlobPath) -> StoreResult<Bytes> {
        self.blobs
            .read()
            .get(path)
            .and_then(|b| b.committed.clone())
            .ok_or_else(|| StoreError::NotFound { path: path.clone() })
    }

    fn head(&self, path: &BlobPath) -> StoreResult<BlobMeta> {
        let blobs = self.blobs.read();
        let state = blobs
            .get(path)
            .filter(|b| b.committed.is_some())
            .ok_or_else(|| StoreError::NotFound { path: path.clone() })?;
        Ok(BlobMeta {
            path: path.clone(),
            size: state.committed.as_ref().map_or(0, |c| c.len() as u64),
            stamp: state.stamp,
        })
    }

    fn delete(&self, path: &BlobPath) -> StoreResult<()> {
        let mut blobs = self.blobs.write();
        // A blob "exists" for deletion purposes if it has committed content
        // or staged blocks; phantom entries do not count.
        let exists = blobs
            .get(path)
            .is_some_and(|b| b.committed.is_some() || !b.blocks.is_empty());
        if !exists {
            return Err(StoreError::NotFound { path: path.clone() });
        }
        blobs.remove(path);
        Ok(())
    }

    fn list(&self, prefix: &str) -> StoreResult<Vec<BlobMeta>> {
        Ok(self
            .blobs
            .read()
            .iter()
            .filter(|(p, b)| p.starts_with(prefix) && b.committed.is_some())
            .map(|(p, b)| BlobMeta {
                path: p.clone(),
                size: b.committed.as_ref().map_or(0, |c| c.len() as u64),
                stamp: b.stamp,
            })
            .collect())
    }

    fn stage_block(
        &self,
        path: &BlobPath,
        block: BlockId,
        data: Bytes,
        stamp: Stamp,
    ) -> StoreResult<()> {
        let mut blobs = self.blobs.write();
        let state = blobs.entry(path.clone()).or_default();
        if state.committed.is_none() {
            state.stamp = stamp;
        }
        if !state.staged.contains(&block) && !state.committed_list.contains(&block) {
            state.staged.push(block.clone());
        }
        state.blocks.insert(block, data);
        Ok(())
    }

    fn commit_block_list(
        &self,
        path: &BlobPath,
        blocks: &[BlockId],
        stamp: Stamp,
    ) -> StoreResult<()> {
        let mut map = self.blobs.write();
        // Validate first — against the existing state only, so a failed
        // commit neither mutates the blob nor creates a phantom entry.
        {
            let existing = map.get(path);
            for id in blocks {
                let known = existing.is_some_and(|s| s.blocks.contains_key(id));
                if !known {
                    return Err(StoreError::UnknownBlock {
                        path: path.clone(),
                        block: id.clone(),
                    });
                }
            }
        }
        let state = map.entry(path.clone()).or_default();
        let mut content = BytesMut::new();
        for id in blocks {
            content.extend_from_slice(&state.blocks[id]);
        }
        if state.committed.is_none() {
            state.stamp = stamp;
        }
        state.committed = Some(content.freeze());
        state.committed_list = blocks.to_vec();
        // Retain only payloads referenced by the new committed list; staged
        // blocks left out are discarded (Azure semantics).
        state.blocks.retain(|id, _| blocks.contains(id));
        state.staged.clear();
        Ok(())
    }

    fn committed_blocks(&self, path: &BlobPath) -> StoreResult<Vec<BlockId>> {
        let blobs = self.blobs.read();
        let state = blobs
            .get(path)
            .filter(|b| b.committed.is_some())
            .ok_or_else(|| StoreError::NotFound { path: path.clone() })?;
        Ok(state.committed_list.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trait_tests::conformance;

    #[test]
    fn conforms_to_object_store_semantics() {
        conformance(&MemoryStore::new());
    }

    #[test]
    fn counters_track_committed_state_only() {
        let s = MemoryStore::new();
        let p = BlobPath::new("a/b").unwrap();
        let m = BlobPath::new("a/m").unwrap();
        s.put(&p, Bytes::from_static(b"1234"), Stamp(1)).unwrap();
        s.stage_block(&m, BlockId::new("x"), Bytes::from_static(b"zz"), Stamp(1))
            .unwrap();
        assert_eq!(s.committed_count(), 1);
        assert_eq!(s.committed_bytes(), 4);
        s.commit_block_list(&m, &[BlockId::new("x")], Stamp(1))
            .unwrap();
        assert_eq!(s.committed_count(), 2);
        assert_eq!(s.committed_bytes(), 6);
    }

    #[test]
    fn failed_commit_leaves_blob_untouched() {
        let s = MemoryStore::new();
        let m = BlobPath::new("a/m").unwrap();
        let b1 = BlockId::new("b1");
        s.stage_block(&m, b1.clone(), Bytes::from_static(b"AA"), Stamp(1))
            .unwrap();
        s.commit_block_list(&m, std::slice::from_ref(&b1), Stamp(1))
            .unwrap();
        let err = s
            .commit_block_list(&m, &[b1.clone(), BlockId::new("ghost")], Stamp(1))
            .unwrap_err();
        assert!(matches!(err, StoreError::UnknownBlock { .. }));
        assert_eq!(s.get(&m).unwrap(), Bytes::from_static(b"AA"));
        assert_eq!(s.committed_blocks(&m).unwrap(), vec![b1]);
    }

    #[test]
    fn restaging_a_block_replaces_payload() {
        let s = MemoryStore::new();
        let m = BlobPath::new("a/m").unwrap();
        let b = BlockId::new("b");
        s.stage_block(&m, b.clone(), Bytes::from_static(b"old"), Stamp(1))
            .unwrap();
        s.stage_block(&m, b.clone(), Bytes::from_static(b"new"), Stamp(1))
            .unwrap();
        s.commit_block_list(&m, &[b], Stamp(1)).unwrap();
        assert_eq!(s.get(&m).unwrap(), Bytes::from_static(b"new"));
    }

    #[test]
    fn put_clears_block_state() {
        let s = MemoryStore::new();
        let m = BlobPath::new("a/m").unwrap();
        let b = BlockId::new("b");
        s.stage_block(&m, b.clone(), Bytes::from_static(b"x"), Stamp(1))
            .unwrap();
        s.put(&m, Bytes::from_static(b"direct"), Stamp(2)).unwrap();
        assert!(matches!(
            s.commit_block_list(&m, &[b], Stamp(2)),
            Err(StoreError::UnknownBlock { .. })
        ));
        assert!(s.committed_blocks(&m).unwrap().is_empty());
    }
}
