//! Property test of the Block Blob protocol against a model: random
//! stage/commit/put/delete sequences must produce exactly the content the
//! Azure semantics dictate.

use bytes::Bytes;
use polaris_store::{BlobPath, BlockId, MemoryStore, ObjectStore, Stamp, StoreError};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Stage {
        block: u8,
        payload: Vec<u8>,
    },
    /// Commit a list of (possibly unknown) block ids.
    Commit {
        picks: Vec<u8>,
    },
    Put {
        payload: Vec<u8>,
    },
    Delete,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..6, proptest::collection::vec(any::<u8>(), 0..8))
            .prop_map(|(block, payload)| Op::Stage { block, payload }),
        3 => proptest::collection::vec(0u8..6, 0..6).prop_map(|picks| Op::Commit { picks }),
        1 => proptest::collection::vec(any::<u8>(), 0..8).prop_map(|payload| Op::Put { payload }),
        1 => Just(Op::Delete),
    ]
}

/// The reference model of one block blob.
#[derive(Default, Clone)]
struct Model {
    /// Known payloads: staged or retained-committed blocks.
    blocks: HashMap<u8, Vec<u8>>,
    committed_list: Vec<u8>,
    committed: Option<Vec<u8>>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn protocol_matches_model(ops in proptest::collection::vec(op_strategy(), 1..25)) {
        let store = MemoryStore::new();
        let path = BlobPath::new("t/_log/m.json").unwrap();
        let mut model = Model::default();
        let id = |b: u8| BlockId::new(format!("b{b}"));
        for op in &ops {
            match op {
                Op::Stage { block, payload } => {
                    store
                        .stage_block(&path, id(*block), Bytes::from(payload.clone()), Stamp(1))
                        .unwrap();
                    model.blocks.insert(*block, payload.clone());
                }
                Op::Commit { picks } => {
                    let ids: Vec<BlockId> = picks.iter().map(|p| id(*p)).collect();
                    let all_known = picks.iter().all(|p| model.blocks.contains_key(p));
                    let result = store.commit_block_list(&path, &ids, Stamp(1));
                    if all_known {
                        result.unwrap();
                        let mut content = Vec::new();
                        for p in picks {
                            content.extend_from_slice(&model.blocks[p]);
                        }
                        model.committed = Some(content);
                        model.committed_list = picks.clone();
                        // Blocks not in the committed list are discarded.
                        model.blocks.retain(|b, _| picks.contains(b));
                    } else {
                        let unknown = matches!(result, Err(StoreError::UnknownBlock { .. }));
                        prop_assert!(unknown, "commit with unknown block must fail");
                        // Failed commit leaves everything untouched.
                    }
                }
                Op::Put { payload } => {
                    store.put(&path, Bytes::from(payload.clone()), Stamp(1)).unwrap();
                    model.committed = Some(payload.clone());
                    model.committed_list.clear();
                    model.blocks.clear();
                }
                Op::Delete => {
                    let result = store.delete(&path);
                    if model.committed.is_some() || !model.blocks.is_empty() {
                        result.unwrap();
                    } else {
                        let missing = matches!(result, Err(StoreError::NotFound { .. }));
                        prop_assert!(missing, "deleting a non-existent blob must fail");
                    }
                    model = Model::default();
                }
            }
            // Invariant: visible content always equals the model.
            match &model.committed {
                Some(content) => {
                    prop_assert_eq!(store.get(&path).unwrap(), Bytes::from(content.clone()));
                    let got: Vec<u8> = store
                        .committed_blocks(&path)
                        .unwrap()
                        .iter()
                        .map(|b| b.as_str().trim_start_matches('b').parse::<u8>().unwrap())
                        .collect();
                    prop_assert_eq!(&got, &model.committed_list);
                }
                None => {
                    let missing = matches!(store.get(&path), Err(StoreError::NotFound { .. }));
                    prop_assert!(missing, "uncommitted blob must be invisible");
                }
            }
        }
    }
}
