//! # polaris-bench
//!
//! The benchmark harness reproducing the paper's evaluation (§7).
//!
//! One binary per table/figure (see `src/bin/`):
//!
//! | Binary | Paper figure |
//! |---|---|
//! | `fig7_ingestion_scaling` | Fig 7 — lineitem load time vs scale, elastic |
//! | `fig8_fixed_vs_elastic` | Fig 8 — fixed-capacity vs elastic load |
//! | `fig9_query_isolation` | Fig 9 — TPC-H queries ± concurrent load |
//! | `fig9_morsel_lane_sweep` | Fig 9 addendum — scan wall clock vs Read lanes |
//! | `fig10_compaction_health` | Fig 10 — compaction restoring health |
//! | `fig11_checkpoint_lifetimes` | Fig 11 — checkpoint lifetimes per table |
//! | `fig12_wp3_concurrency` | Fig 12 — WP3 concurrency phases |
//! | `ablation_conflict_granularity` | §4.4.1 — Table vs DataFile conflicts |
//!
//! Criterion micro-benches live under `benches/`. Absolute numbers are a
//! laptop-scale simulation; the harness reports the *shapes* the paper
//! claims (who wins, by what factor, where the knees are).

use polaris_core::{EngineConfig, PolarisEngine};
use polaris_dcp::{ComputePool, WorkloadClass};
use polaris_store::{CachingStore, LatencyModel, LatencyStore, MemoryStore};
use std::sync::Arc;
use std::time::Duration;

/// Build an engine with an explicit read/write topology.
pub fn engine_with_topology(
    read_nodes: usize,
    write_nodes: usize,
    slots: usize,
    config: EngineConfig,
) -> Arc<PolarisEngine> {
    let pool = Arc::new(ComputePool::with_topology(read_nodes, write_nodes, slots));
    pool.add_nodes(WorkloadClass::System, 2, 2);
    PolarisEngine::new(Arc::new(MemoryStore::new()), pool, config)
}

/// Build an engine whose object store pays a simulated cloud-storage
/// latency per request and per byte.
///
/// This is what makes the scaling figures meaningful on small machines:
/// storage stalls are *sleeps*, so concurrent tasks overlap them exactly
/// like concurrent nodes overlap remote-storage waits in the production
/// system — independent of how many local cores execute the threads.
pub fn engine_with_latency(
    read_nodes: usize,
    write_nodes: usize,
    slots: usize,
    config: EngineConfig,
    model: LatencyModel,
) -> Arc<PolarisEngine> {
    let pool = Arc::new(ComputePool::with_topology(read_nodes, write_nodes, slots));
    pool.add_nodes(WorkloadClass::System, 2, 2);
    // BE data cache over remote storage: warm reads skip the simulated
    // latency entirely, so freshly committed/compacted files (cache
    // misses) are what make concurrent-DM queries slower — the paper's
    // §7.4 mechanism.
    let store = CachingStore::new(
        LatencyStore::new(MemoryStore::new(), model),
        256 * 1024 * 1024,
    );
    PolarisEngine::new(Arc::new(store), pool, config)
}

/// Build an engine over *uncached* simulated cloud storage: every chunk
/// fetch pays the latency model, with no BE data cache in front.
///
/// The lane-sweep figure needs this: with a cache, warm scans become
/// CPU-bound and lane count stops mattering on a small host. Raw latency
/// keeps scans I/O-bound, so wall clock tracks how many lanes overlap
/// storage stalls — the quantity the morsel scheduler controls.
pub fn engine_with_raw_latency(
    read_nodes: usize,
    write_nodes: usize,
    slots: usize,
    config: EngineConfig,
    model: LatencyModel,
) -> Arc<PolarisEngine> {
    let pool = Arc::new(ComputePool::with_topology(read_nodes, write_nodes, slots));
    pool.add_nodes(WorkloadClass::System, 2, 2);
    let store = LatencyStore::new(MemoryStore::new(), model);
    PolarisEngine::new(Arc::new(store), pool, config)
}

/// The latency model used by the query-isolation figure: a per-request
/// floor plus a per-byte transfer cost, loosely shaped like object
/// storage.
pub fn cloud_model() -> LatencyModel {
    LatencyModel {
        per_request: Duration::from_micros(800),
        per_byte: Duration::from_nanos(400),
    }
}

/// The heavier model used by the ingestion figures (7–8): per-byte cost
/// dominates, standing in for the parse/sort/encode work that makes the
/// paper's loads CPU-bound. Sleep-based, so it parallelizes across nodes
/// regardless of local core count.
pub fn ingest_model() -> LatencyModel {
    LatencyModel {
        per_request: Duration::from_millis(1),
        per_byte: Duration::from_micros(3),
    }
}

/// Default benchmark engine config: production-ish thresholds scaled to
/// laptop data sizes.
pub fn bench_config() -> EngineConfig {
    EngineConfig {
        compact_min_rows: 256,
        checkpoint_every: 10,
        retention_seqs: 1_000,
        max_write_tasks: 64,
        max_read_tasks: 32,
        ..EngineConfig::default()
    }
}

/// Format a duration in milliseconds with two decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Where figure binaries drop their machine-readable artifacts.
const BENCH_OUT_DIR: &str = "target/bench";

fn write_artifact(file_name: &str, contents: &str, what: &str) {
    let dir = std::path::Path::new(BENCH_OUT_DIR);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: could not create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(file_name);
    match std::fs::write(&path, contents) {
        Ok(()) => println!("{what} written to {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Dump the engine-wide metrics snapshot to
/// `target/bench/<figure>_metrics.json` next to the figure's stdout, so
/// regressions in store traffic / task counts are diffable run-to-run.
pub fn dump_metrics_snapshot(figure: &str, snapshot: &polaris_obs::MetricsSnapshot) {
    write_artifact(
        &format!("{figure}_metrics.json"),
        &snapshot.to_json_pretty(),
        "metrics snapshot",
    );
}

/// Dump a harvester time-series export to
/// `target/bench/<figure>_timeseries.json` — per-tick counter rates and
/// histogram quantiles over the run.
pub fn dump_time_series(figure: &str, series: &polaris_obs::TimeSeriesSnapshot) {
    write_artifact(
        &format!("{figure}_timeseries.json"),
        &series.to_json_pretty(),
        "time series",
    );
}

/// Dump the engine's trace ring as Chrome `trace_event` JSON to
/// `target/bench/<figure>_trace.json` — load it in Perfetto or
/// `chrome://tracing` to see per-node task lanes.
pub fn dump_chrome_trace(figure: &str, engine: &PolarisEngine) {
    write_artifact(
        &format!("{figure}_trace.json"),
        &engine.chrome_trace(),
        "chrome trace",
    );
}

/// Print a figure header in a consistent style.
pub fn header(figure: &str, caption: &str) {
    println!("=== {figure} ===");
    println!("# {caption}");
}
