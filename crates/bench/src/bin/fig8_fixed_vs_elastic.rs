//! Figure 8: `lineitem` load times at two scales, fixed capacity (the
//! previous-generation Synapse SQL DW model) vs elastic allocation.
//!
//! The paper's claim: with fixed capacity the bigger load degrades because
//! it cannot get more nodes; the elastic service allocates proportionally,
//! so the big load finishes in near-flat time — at similar price, since
//! billing is `nodes × time`.
//!
//! Scale mapping: the paper's 1 TB / 10 TB pair becomes SF 2 / SF 20 here.

use polaris_bench::{
    bench_config, dump_metrics_snapshot, engine_with_latency, header, ingest_model, ms,
};
use polaris_core::RecordBatch;
use polaris_dcp::{CostEstimate, ElasticAllocator, FixedAllocator, ResourceAllocator};
use polaris_obs::MetricsSnapshot;
use polaris_workloads::tpch;
use std::time::{Duration, Instant};

fn load_with(nodes: usize, files: usize, sf: f64) -> (Duration, MetricsSnapshot) {
    let mut config = bench_config();
    config.distributions = files as u32;
    config.max_write_tasks = files;
    let engine = engine_with_latency(2, nodes, 1, config, ingest_model());
    let mut session = engine.session();
    session.execute(&tpch::ddl_of("lineitem")).unwrap();
    let sources = tpch::source_files("lineitem", sf, 42, files);
    let all = RecordBatch::concat(&sources).unwrap();
    let started = Instant::now();
    let mut txn = engine.begin();
    txn.insert("lineitem", &all).unwrap();
    txn.commit().unwrap();
    (started.elapsed(), engine.metrics_snapshot())
}

fn main() {
    header(
        "Figure 8",
        "lineitem load at two scales, fixed vs elastic resources; labels = resource factor",
    );
    let fixed = FixedAllocator { nodes: 8 };
    let elastic = ElasticAllocator {
        cpu_per_node: 1.0,
        max_nodes: None,
    };
    println!(
        "{:>6} {:>8} {:>9} {:>7} {:>12} {:>18}",
        "sf", "rows", "model", "nodes", "load_ms", "node_ms (cost)"
    );
    let mut results: Vec<(f64, &str, usize, Duration)> = Vec::new();
    let mut last_metrics = None;
    for sf in [2.0f64, 20.0] {
        let files = ((4.0 * sf).round() as usize).max(1);
        let rows = tpch::rows_at("lineitem", sf);
        let estimate = CostEstimate {
            bytes: rows as u64 * 100,
            files,
            cpu_cost: files as f64,
        };
        for (label, alloc) in [
            ("fixed", &fixed as &dyn ResourceAllocator),
            ("elastic", &elastic as &dyn ResourceAllocator),
        ] {
            let nodes = alloc.nodes_for(&estimate);
            let (elapsed, metrics) = load_with(nodes, files, sf);
            last_metrics = Some(metrics);
            println!(
                "{:>6.0} {:>8} {:>9} {:>7} {:>12} {:>18.1}   resource_factor={}x",
                sf,
                rows,
                label,
                nodes,
                ms(elapsed),
                elapsed.as_secs_f64() * 1e3 * nodes as f64,
                nodes / 8,
            );
            results.push((sf, label, nodes, elapsed));
        }
    }
    println!();
    let fixed_ratio = results[2].3.as_secs_f64() / results[0].3.as_secs_f64();
    let elastic_ratio = results[3].3.as_secs_f64() / results[1].3.as_secs_f64();
    println!(
        "shape check: 10x data with FIXED capacity slows {fixed_ratio:.1}x; \
         with ELASTIC only {elastic_ratio:.1}x (paper: elastic stays near-flat, \
         price-performance similar since cost = nodes x time)"
    );
    if let Some(snapshot) = last_metrics {
        dump_metrics_snapshot("fig8_fixed_vs_elastic", &snapshot);
    }
}
