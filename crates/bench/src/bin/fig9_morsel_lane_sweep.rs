//! Fig 9 addendum — big-scan wall clock vs Read-lane count under the
//! morsel-driven pipeline.
//!
//! The paper's isolation figure holds lane count fixed; this sweep varies
//! it. Storage is simulated cloud latency with *no* BE cache, so every
//! column-chunk fetch pays a sleep and the scan stays I/O-bound: wall
//! clock then measures how many fetches the lanes overlap, which is
//! exactly what the work-stealing morsel scheduler distributes. Expected
//! shape: wall clock improves monotonically from 1 to 4 lanes, and the
//! multi-lane runs report `exec.morsels_stolen > 0` (lanes that drain
//! their own deque steal split-off morsels from loaded peers).

use polaris_bench::{cloud_model, engine_with_raw_latency, header, ms};
use polaris_columnar::WriterOptions;
use polaris_core::{DataType, EngineConfig, Field, RecordBatch, Schema, Value};
use std::time::{Duration, Instant};

const COLS: usize = 8;
const ROWS: usize = 16_384;
const FILES: u32 = 4;
const GROUP_ROWS: usize = 1024;
const RUNS: usize = 3;

fn sweep_config() -> EngineConfig {
    EngineConfig {
        distributions: FILES,
        writer: WriterOptions {
            row_group_rows: GROUP_ROWS,
            ..Default::default()
        },
        // Small in-flight budget relative to the ~1 MiB files so lanes
        // split whole-file morsels and steal the halves.
        scan_morsel_target_bytes: 64 * 1024,
        scan_prefetch_depth: 2,
        ..EngineConfig::default()
    }
}

fn main() {
    header(
        "fig9_morsel_lane_sweep",
        "full-table aggregate over 4 files x 16 row groups, uncached \
         cloud-latency storage; wall clock vs Read lanes",
    );

    let schema = Schema::new(
        (0..COLS)
            .map(|c| Field::new(format!("c{c}"), DataType::Int64))
            .collect(),
    );
    let rows: Vec<Vec<Value>> = (0..ROWS)
        .map(|i| {
            (0..COLS)
                .map(|c| Value::Int((i * (c + 1)) as i64))
                .collect()
        })
        .collect();
    let batch = RecordBatch::from_rows(schema, &rows).unwrap();
    let sums: Vec<String> = (0..COLS).map(|c| format!("SUM(c{c}) AS s{c}")).collect();
    let query = format!("SELECT {} FROM big", sums.join(", "));
    // Ground truth for the per-run sanity check below.
    let expected_s0: i64 = (0..ROWS as i64).sum();

    println!("lanes  best_ms  runs_ms                scheduled  stolen");
    let mut best = Vec::new();
    for lanes in [1usize, 2, 4] {
        let engine = engine_with_raw_latency(lanes, 2, 2, sweep_config(), cloud_model());
        let mut s = engine.session();
        s.execute(&format!(
            "CREATE TABLE big ({})",
            (0..COLS)
                .map(|c| format!("c{c} BIGINT"))
                .collect::<Vec<_>>()
                .join(", ")
        ))
        .unwrap();
        s.insert_batch("big", &batch).unwrap();
        // Warm FE-side state (catalog, snapshot cache); chunk fetches
        // still pay full latency every run — there is no data cache.
        s.query("SELECT COUNT(*) AS n FROM big").unwrap();

        let mut times = Vec::new();
        for _ in 0..RUNS {
            let t0 = Instant::now();
            let out = s.query(&query).unwrap();
            times.push(t0.elapsed());
            assert_eq!(out.column(0).value(0).as_int(), Some(expected_s0));
        }
        let snap = engine.metrics_snapshot();
        let fastest = times.iter().min().copied().unwrap_or(Duration::ZERO);
        println!(
            "{lanes:>5}  {:>7}  [{}]  {:>9}  {:>6}",
            ms(fastest),
            times.iter().map(|t| ms(*t)).collect::<Vec<_>>().join(", "),
            snap.counter("exec.morsels_scheduled"),
            snap.counter("exec.morsels_stolen"),
        );
        if lanes == 4 {
            polaris_bench::dump_metrics_snapshot("fig9_morsel_lane_sweep", &snap);
        }
        best.push((lanes, fastest, snap.counter("exec.morsels_stolen")));
    }

    let monotonic = best.windows(2).all(|w| w[1].1 < w[0].1);
    let stolen_multi = best
        .iter()
        .filter(|(l, _, _)| *l > 1)
        .all(|(_, _, s)| *s > 0);
    println!(
        "shape: wall clock monotonically improving 1->4 lanes: {monotonic}; \
         multi-lane runs stole morsels: {stolen_multi}"
    );
}
