//! Kill-anywhere chaos harness for the durable commit log.
//!
//! Each scenario simulates one process lifetime that dies at a chosen
//! point of the commit pipeline — statement block staging, manifest
//! upload, validation, the sequencer section, the WAL append (stage and
//! publish separately), install, publish, checkpoint write — then reopens
//! the engine over the surviving durable state and checks the recovery
//! contract:
//!
//! * **committed stays committed** — every value whose commit was
//!   acknowledged (the statement returned `Ok`) is present after reopen;
//! * **aborted leaves no trace** — a commit that failed *before* its WAL
//!   append published is absent after reopen (after the append, an
//!   unacknowledged commit is durable and may legitimately resurface —
//!   standard WAL semantics);
//! * **dense clock** — replay never hits a gap (`torn_records` stays 0
//!   except at a genuine tear) and a reopened engine commits at
//!   `clock + 1`;
//! * **zero orphaned staged manifests** — after recovery every
//!   `_log/txn-*.json` blob is referenced by a `Manifests` row;
//! * **double-reopen idempotence** — two recoveries over the same store
//!   export byte-identical catalog images.
//!
//! Crashes are simulated by freezing the store (`ChaosStore`): from the
//! kill instant every storage operation fails, including the dying
//! engine's own cleanup — exactly what `kill -9` leaves behind. Commit
//! failpoint probes pull the same kill switch for the points between
//! storage operations.
//!
//! Modes: the default runs the bounded deterministic matrix (every kill
//! site × a fixed seed list — the tier-1 CI budget); `--soak N` runs `N`
//! extra randomized lifetimes for overnight soaking; `--seed S` pins the
//! base seed.

use polaris_core::{EngineConfig, PolarisEngine, Value};
use polaris_dcp::ComputePool;
use polaris_store::{ChaosStore, MemoryStore, ObjectStore};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Where a lifetime is killed.
#[derive(Debug, Clone)]
enum KillSite {
    /// Freeze at the `nth` matching storage operation.
    Store {
        op: &'static str,
        path: &'static str,
        nth: u64,
    },
    /// Freeze when the `nth` firing of a named commit failpoint probe is
    /// reached (`commit.validated`, `commit.sequencer`, `commit.logged`,
    /// `commit.installed`, `commit.published`).
    Probe { point: &'static str, nth: u64 },
}

/// Kill sites crossed with whether the WAL append had published by then:
/// `true` means the in-flight commit is durable and may resurface.
const SITES: &[(KillSite, bool)] = &[
    // Statement output: staging manifest blocks for a table under lake/.
    (
        KillSite::Store {
            op: "stage_block",
            path: "/_log/txn-",
            nth: 1,
        },
        false,
    ),
    // Manifest upload: the pipelined commit_block_list under lake/.
    (
        KillSite::Store {
            op: "commit_block_list",
            path: "/_log/txn-",
            nth: 1,
        },
        false,
    ),
    // WAL append, stage half: frame staged but never listed.
    (
        KillSite::Store {
            op: "stage_block",
            path: "sys/wal/",
            nth: 1,
        },
        false,
    ),
    // WAL append, publish half: commit list for the segment.
    (
        KillSite::Store {
            op: "commit_block_list",
            path: "sys/wal/",
            nth: 1,
        },
        false,
    ),
    // Checkpoint write (needs log_checkpoint_every small; see scenario).
    (
        KillSite::Store {
            op: "put",
            path: "sys/checkpoint/",
            nth: 1,
        },
        false,
    ),
    // Failpoints between storage operations.
    (
        KillSite::Probe {
            point: "commit.validated",
            nth: 1,
        },
        false,
    ),
    (
        KillSite::Probe {
            point: "commit.sequencer",
            nth: 1,
        },
        false,
    ),
    // From commit.logged on, the batch is durable.
    (
        KillSite::Probe {
            point: "commit.logged",
            nth: 1,
        },
        true,
    ),
    (
        KillSite::Probe {
            point: "commit.installed",
            nth: 1,
        },
        true,
    ),
    (
        KillSite::Probe {
            point: "commit.published",
            nth: 1,
        },
        true,
    ),
];

fn pool() -> Arc<ComputePool> {
    let pool = Arc::new(ComputePool::with_topology(4, 4, 2));
    pool.add_nodes(polaris_dcp::WorkloadClass::System, 2, 2);
    pool
}

fn config() -> EngineConfig {
    EngineConfig {
        commit_log_enabled: true,
        log_segment_bytes: 4 * 1024,
        log_checkpoint_every: 5,
        ..EngineConfig::for_testing()
    }
}

fn open_plain(inner: &Arc<MemoryStore>) -> Arc<PolarisEngine> {
    PolarisEngine::open(
        Arc::new(Arc::clone(inner)) as Arc<dyn ObjectStore>,
        pool(),
        config(),
    )
    .expect("recovery over a quiesced store cannot fail")
}

fn visible_values(engine: &Arc<PolarisEngine>) -> HashSet<i64> {
    let mut s = engine.session();
    let rows = s.query("SELECT v FROM chaos_t").unwrap();
    (0..rows.num_rows())
        .map(|i| match rows.row(i)[0] {
            Value::Int(v) => v,
            ref other => panic!("unexpected value {other:?}"),
        })
        .collect()
}

/// xorshift64* — deterministic, dependency-free seed expansion.
fn next_rand(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

struct Outcome {
    kill_fired: bool,
    acked_after_arm: Vec<i64>,
    refused: Vec<i64>,
}

/// One killed lifetime: arm the site, run inserts until the store dies
/// (or the workload budget runs out), and record which commits were
/// acknowledged vs refused after arming.
fn run_lifetime(
    inner: &Arc<MemoryStore>,
    site: &KillSite,
    seed: u64,
    next_value: &mut i64,
) -> Outcome {
    let chaos = Arc::new(ChaosStore::new(Arc::clone(inner)));
    let engine = PolarisEngine::open(Arc::clone(&chaos) as Arc<dyn ObjectStore>, pool(), config())
        .expect("reopen before the kill is armed");
    match site {
        KillSite::Store { op, path, nth } => chaos.arm(op, path, *nth),
        KillSite::Probe { point, nth } => {
            let switch = chaos.kill_switch();
            let point = point.to_string();
            let left = AtomicU64::new(*nth);
            engine
                .catalog()
                .set_commit_probe(Some(Arc::new(move |p: &str| {
                    if p == point && left.fetch_sub(1, Ordering::SeqCst) == 1 {
                        switch.store(true, Ordering::SeqCst);
                    }
                })));
        }
    }
    let mut rng = seed;
    let mut out = Outcome {
        kill_fired: false,
        acked_after_arm: Vec::new(),
        refused: Vec::new(),
    };
    let mut s = engine.session();
    for _ in 0..16 {
        let v = *next_value;
        *next_value += 1;
        // Vary statement shape a little so different seeds die with
        // different amounts of staged state.
        let stmt = if next_rand(&mut rng).is_multiple_of(3) {
            format!(
                "INSERT INTO chaos_t VALUES ({v}, {v}), ({v}, {})",
                v + 1_000_000
            )
        } else {
            format!("INSERT INTO chaos_t VALUES ({v}, {v})")
        };
        match s.execute(&stmt) {
            Ok(_) => out.acked_after_arm.push(v),
            Err(_) => out.refused.push(v),
        }
        if chaos.killed() {
            out.kill_fired = true;
            break;
        }
    }
    out
}

/// Full scenario: seed a committed baseline, kill a lifetime at `site`,
/// recover, and check every invariant. Returns a human line.
fn run_scenario(label: &str, site: &KillSite, durable_after: bool, seed: u64) -> String {
    let inner = Arc::new(MemoryStore::new());
    let mut next_value: i64 = 0;

    // Lifetime 1: healthy baseline.
    let mut acked: HashSet<i64> = HashSet::new();
    {
        let engine = open_plain(&inner);
        let mut s = engine.session();
        s.execute("CREATE TABLE chaos_t (id BIGINT, v BIGINT)")
            .unwrap();
        for _ in 0..4 {
            let v = next_value;
            next_value += 1;
            s.execute(&format!("INSERT INTO chaos_t VALUES ({v}, {v})"))
                .unwrap();
            acked.insert(v);
        }
    }

    // Lifetime 2: dies at the armed site.
    let outcome = run_lifetime(&inner, site, seed, &mut next_value);
    acked.extend(outcome.acked_after_arm.iter().copied());

    // Lifetime 3 (+4): recover and verify.
    let engine = open_plain(&inner);
    let report = engine.recovery_report().expect("durability enabled");
    let visible = visible_values(&engine);

    // 1. Committed stays committed.
    for v in &acked {
        assert!(
            visible.contains(v),
            "[{label}] acknowledged value {v} lost after recovery; report {report:?}"
        );
    }
    // 2. Aborted leaves no trace (pre-durability kill sites only). A
    //    refused commit may resurface only when the kill hit at or after
    //    the WAL publish.
    if !durable_after {
        for v in &outcome.refused {
            assert!(
                !visible.contains(v),
                "[{label}] refused value {v} resurfaced after recovery; report {report:?}"
            );
        }
    }
    // 3. Dense clock: replay reached the recovered watermark without
    //    gaps, and new commits continue the dense run.
    let clock_before = engine.catalog().now().0;
    let mut s = engine.session();
    s.execute(&format!(
        "INSERT INTO chaos_t VALUES ({next_value}, {next_value})"
    ))
    .unwrap();
    assert_eq!(
        engine.catalog().now().0,
        clock_before + 1,
        "[{label}] post-recovery commit must consume exactly one timestamp"
    );
    // 4. Zero orphaned staged manifests.
    let referenced: HashSet<String> = engine
        .catalog()
        .export()
        .unwrap()
        .tables
        .iter()
        .flat_map(|t| t.manifests.iter().map(|(_, file, _)| file.clone()))
        .collect();
    for meta in inner.list("lake/").unwrap() {
        let path = meta.path.as_str().to_owned();
        if path.contains("/_log/txn-") {
            assert!(
                referenced.contains(&path),
                "[{label}] orphaned staged manifest after recovery: {path}"
            );
        }
    }
    drop(engine);
    // 5. Double-reopen idempotence.
    let again = open_plain(&inner);
    let export_a = open_plain(&inner).catalog().export().unwrap();
    let export_b = again.catalog().export().unwrap();
    assert_eq!(export_a, export_b, "[{label}] double reopen diverged");

    format!(
        "[{label}] ok: kill_fired={} acked={} refused={} replayed={} torn={} orphans_swept={}",
        outcome.kill_fired,
        acked.len(),
        outcome.refused.len(),
        report.replayed_commits,
        report.torn_records,
        report.orphans_collected
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg_val = |flag: &str| -> Option<u64> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
    };
    let base_seed = arg_val("--seed").unwrap_or(0xC0FFEE);
    let soak = arg_val("--soak").unwrap_or(0);

    let site_label = |site: &KillSite| match site {
        KillSite::Store { op, path, .. } => format!("store:{op}@{path}"),
        KillSite::Probe { point, .. } => format!("probe:{point}"),
    };

    // Bounded deterministic matrix: every site, two seeds each.
    let mut lines = Vec::new();
    for (site, durable_after) in SITES {
        for k in 0..2u64 {
            let seed = base_seed ^ (k.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let label = format!("{} seed={seed:#x}", site_label(site));
            lines.push(run_scenario(&label, site, *durable_after, seed));
        }
    }
    // Soak: randomized nth and seeds over the same matrix.
    let mut rng = base_seed | 1;
    for i in 0..soak {
        let pick = (next_rand(&mut rng) as usize) % SITES.len();
        let (site, durable_after) = &SITES[pick];
        let nth = next_rand(&mut rng) % 3 + 1;
        let site = match site {
            KillSite::Store { op, path, .. } => KillSite::Store { op, path, nth },
            KillSite::Probe { point, .. } => KillSite::Probe { point, nth },
        };
        let seed = next_rand(&mut rng);
        let label = format!("soak#{i} {} nth={nth} seed={seed:#x}", site_label(&site));
        lines.push(run_scenario(&label, &site, *durable_after, seed));
    }

    for line in &lines {
        println!("{line}");
    }
    println!(
        "chaos: {} scenarios passed (committed-stays-committed, \
         aborted-leaves-no-trace, dense clock, zero orphans, \
         double-reopen idempotence)",
        lines.len()
    );
}
