//! Recovery-time microbenchmark: how long `PolarisEngine::open` takes to
//! rebuild the catalog as a function of (a) the WAL tail length replayed
//! and (b) the checkpoint interval.
//!
//! Two sweeps, printed as markdown tables (the EXPERIMENTS.md recovery
//! addendum records a run of this binary):
//!
//! * **Tail sweep** — checkpointing disabled, so recovery replays the
//!   whole log: recovery wall time should grow linearly with the number
//!   of logged commits.
//! * **Checkpoint-interval sweep** — fixed workload, varying
//!   `log_checkpoint_every`: tighter intervals bound the replayed tail
//!   (shorter recovery) at the cost of more checkpoint writes during the
//!   workload.
//!
//! `--full` quadruples the workload sizes for quieter numbers.

use polaris_core::{EngineConfig, PolarisEngine, RecoveryReport};
use polaris_dcp::ComputePool;
use polaris_store::{MemoryStore, ObjectStore};
use std::sync::Arc;
use std::time::Instant;

fn pool() -> Arc<ComputePool> {
    let pool = Arc::new(ComputePool::with_topology(4, 4, 2));
    pool.add_nodes(polaris_dcp::WorkloadClass::System, 2, 2);
    pool
}

fn config(checkpoint_every: u64) -> EngineConfig {
    EngineConfig {
        commit_log_enabled: true,
        log_segment_bytes: 64 * 1024,
        log_checkpoint_every: checkpoint_every,
        ..EngineConfig::for_testing()
    }
}

/// Run `commits` single-row inserts on a fresh durable engine, drop it
/// (the simulated kill), and time the reopen.
fn crash_and_reopen(commits: usize, checkpoint_every: u64) -> (f64, RecoveryReport) {
    let inner = Arc::new(MemoryStore::new());
    {
        let engine = PolarisEngine::open(
            Arc::new(Arc::clone(&inner)) as Arc<dyn ObjectStore>,
            pool(),
            config(checkpoint_every),
        )
        .unwrap();
        let mut s = engine.session();
        s.execute("CREATE TABLE r (id BIGINT, v BIGINT)").unwrap();
        for i in 0..commits {
            s.execute(&format!("INSERT INTO r VALUES ({i}, {})", i * 3))
                .unwrap();
        }
    }
    let t0 = Instant::now();
    let engine = PolarisEngine::open(
        Arc::new(Arc::clone(&inner)) as Arc<dyn ObjectStore>,
        pool(),
        config(checkpoint_every),
    )
    .unwrap();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    (wall_ms, engine.recovery_report().unwrap())
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let scale = if full { 4 } else { 1 };

    println!("## Recovery time vs log-tail length (no checkpoints)\n");
    println!("| logged commits | open() ms | replay ms | segments | replayed |");
    println!("|---:|---:|---:|---:|---:|");
    for commits in [16, 64, 256, 512 * scale] {
        let (wall_ms, report) = crash_and_reopen(commits, 0);
        println!(
            "| {commits} | {wall_ms:.2} | {:.2} | {} | {} |",
            report.wall_ns as f64 / 1e6,
            report.segments_scanned,
            report.replayed_commits
        );
    }

    let commits = 256 * scale;
    println!("\n## Recovery time vs checkpoint interval ({commits} commits)\n");
    println!("| checkpoint every | open() ms | replay ms | ckpt clock | replayed | segments |");
    println!("|---:|---:|---:|---:|---:|---:|");
    for every in [0u64, 16, 64, 256] {
        let (wall_ms, report) = crash_and_reopen(commits, every);
        let label = if every == 0 {
            "never".to_owned()
        } else {
            every.to_string()
        };
        println!(
            "| {label} | {wall_ms:.2} | {:.2} | {} | {} | {} |",
            report.wall_ns as f64 / 1e6,
            report.checkpoint_clock,
            report.replayed_commits,
            report.segments_scanned
        );
    }
}
