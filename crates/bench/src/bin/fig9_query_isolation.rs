//! Figure 9: the 22 TPC-H-shaped query times with and without a
//! concurrent data load into the same tables.
//!
//! The paper's claim: results hold *even when* ingestion runs in parallel
//! in a separate, uncommitted transaction — WLM isolates the load on
//! write nodes, Snapshot Isolation gives every query a consistent view,
//! and caches stay warm because committed data files are immutable.
//!
//! Expect the `with_load/solo` ratio near 1.0 for most queries.

use polaris_bench::{
    bench_config, cloud_model, dump_metrics_snapshot, engine_with_latency, header, ms,
};
use polaris_core::PolarisEngine;
use polaris_workloads::{queries, tpch};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SF: f64 = 2.0;

fn load_tpch(engine: &Arc<PolarisEngine>) {
    let mut session = engine.session();
    for table in tpch::TABLES {
        session.execute(&tpch::ddl_of(table)).unwrap();
        let data = tpch::generate(table, SF, 42);
        session.insert_batch(table, &data).unwrap();
    }
}

fn run_queries(engine: &Arc<PolarisEngine>) -> Vec<(String, Duration)> {
    let mut session = engine.session();
    // One cold pass to warm BE caches, then time three warm runs (the
    // paper averages 3 warm runs after a cold one).
    for (_, sql) in queries::all() {
        session.query(&sql).unwrap();
    }
    let mut out = Vec::new();
    for (name, sql) in queries::all() {
        let mut total = Duration::ZERO;
        for _ in 0..3 {
            let t = Instant::now();
            session.query(&sql).unwrap();
            total += t.elapsed();
        }
        out.push((name.to_owned(), total / 3));
    }
    out
}

fn main() {
    header(
        "Figure 9",
        "TPC-H query times (avg of 3 warm runs) with and without concurrent load into the same tables",
    );
    let engine = engine_with_latency(8, 4, 2, bench_config(), cloud_model());
    load_tpch(&engine);

    let solo = run_queries(&engine);

    // Concurrent phase: a separate session keeps loading lineitem batches
    // inside one long-running transaction that NEVER commits, so queries
    // read a stable snapshot while write nodes stay busy.
    let stop = Arc::new(AtomicBool::new(false));
    let loader_stop = Arc::clone(&stop);
    let loader_engine = Arc::clone(&engine);
    let loader = std::thread::spawn(move || {
        let mut txn = loader_engine.begin();
        let batch = tpch::generate_range("lineitem", SF, 7, 0, 300);
        while !loader_stop.load(Ordering::SeqCst) {
            txn.insert("lineitem", &batch).unwrap();
            // Paced like a streaming ETL feed. In production the load runs
            // on separate WRITE nodes with their own CPUs; this host has a
            // single core, so an unpaced loop would measure raw CPU
            // contention instead of the engine's isolation.
            std::thread::sleep(Duration::from_millis(10));
        }
        txn.rollback(); // uncommitted load: nothing ever becomes visible
    });
    let concurrent = run_queries(&engine);
    stop.store(true, Ordering::SeqCst);
    loader.join().unwrap();

    println!(
        "{:>5} {:>12} {:>14} {:>8}",
        "query", "solo_ms", "with_load_ms", "ratio"
    );
    let mut ratios = Vec::new();
    for ((name, s), (_, c)) in solo.iter().zip(&concurrent) {
        let ratio = c.as_secs_f64() / s.as_secs_f64().max(1e-9);
        ratios.push(ratio);
        println!("{:>5} {:>12} {:>14} {:>8.2}", name, ms(*s), ms(*c), ratio);
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = ratios[ratios.len() / 2];
    println!();
    println!(
        "shape check: median with_load/solo ratio = {median:.2} \
         (paper: queries unaffected by concurrent load; expect ~1.0). \
         NOTE: any residual slowdown on a single-core host is OS CPU \
         sharing between the loader and query threads — the engine itself \
         never blocks readers (verified: counts identical during the \
         uncommitted load) and caches stay warm (immutably committed files \
         are never invalidated)."
    );
    dump_metrics_snapshot("fig9_query_isolation", &engine.metrics_snapshot());
}
