//! Figure 11: manifest checkpoint lifetimes per table within the WP1
//! longevity run.
//!
//! Each DM phase creates ~10 new manifests per touched table (2 INSERTs,
//! 6 DELETEs, plus compactions); once a table crosses the
//! `checkpoint_every` threshold the STO writes a new checkpoint, ending
//! the previous one's lifetime. Catalog tables are touched first in a DM
//! phase and web tables later, which shows up as staggered checkpoint
//! creation — the paper's observation.

use polaris_bench::{bench_config, dump_metrics_snapshot, engine_with_topology, header};
use polaris_core::SequenceId;
use polaris_workloads::lstbench::{self, Wp1Event};
use polaris_workloads::tpcds;
use std::collections::HashMap;

const SF: f64 = 1.0;
const PHASES: usize = 8;

fn main() {
    header(
        "Figure 11",
        "manifest checkpoint lifetimes per table during the WP1 longevity run",
    );
    let mut config = bench_config();
    // The paper's trigger is 10 manifests because its DM phase writes 10
    // manifests per table; ours writes ~3 (insert + delete + compaction),
    // so the equivalent trigger is 3.
    config.checkpoint_every = 3;
    config.compact_min_rows = 64;
    let engine = engine_with_topology(6, 4, 2, config);
    lstbench::setup_tpcds(&engine, SF, 42).unwrap();
    let events = lstbench::run_wp1(&engine, PHASES, SF, 42).unwrap();

    // A checkpoint's lifetime runs from its creation until the next
    // checkpoint of the same table supersedes it.
    let mut seen: HashMap<String, SequenceId> = HashMap::new();
    let mut lifetimes: Vec<(String, SequenceId, usize, Option<usize>)> = Vec::new();
    for event in &events {
        if let Wp1Event::Checkpoint {
            phase,
            table,
            covers,
            ..
        } = event
        {
            let is_new = seen.get(table) != Some(covers);
            if is_new {
                // close the previous lifetime for this table
                if let Some(open) = lifetimes
                    .iter_mut()
                    .rev()
                    .find(|(t, _, _, end)| t == table && end.is_none())
                {
                    open.3 = Some(*phase);
                }
                lifetimes.push((table.clone(), *covers, *phase, None));
                seen.insert(table.clone(), *covers);
            }
        }
    }
    println!(
        "{:>16} {:>12} {:>12} {:>12} {:>10}",
        "table", "covers_seq", "born_phase", "died_phase", "lifetime"
    );
    for (table, covers, born, died) in &lifetimes {
        let (died_s, life) = match died {
            Some(d) => (d.to_string(), format!("{} phases", d - born)),
            None => ("alive".to_owned(), "open".to_owned()),
        };
        println!(
            "{:>16} {:>12} {:>12} {:>12} {:>10}",
            table, covers.0, born, died_s, life
        );
    }
    println!();
    let checkpointed_tables: std::collections::HashSet<&str> =
        lifetimes.iter().map(|(t, ..)| t.as_str()).collect();
    println!(
        "shape check: {}/{} tables accumulated >= {} manifests and got checkpoints; \
         successive checkpoints supersede earlier ones (bounded lifetimes); \
         catalog tables checkpoint no later than web tables (DM touch order)",
        checkpointed_tables.len(),
        tpcds::tables().len(),
        3
    );
    dump_metrics_snapshot("fig11_checkpoints", &engine.metrics_snapshot());
}
