//! Figure 7: load time for the TPC-H `lineitem` table at increasing scale
//! factors, with elastic (cost-based) resource allocation.
//!
//! Paper setup: lineitem has 40 source files at 100 GB and 400 at 1 TB;
//! loads parallelize across source files but not within one, so the file
//! count caps parallelism. The elastic allocator sizes the topology from
//! the estimated cost, and load time grows **sub-linearly** in data volume
//! while the resource factor (bar labels) grows with scale.
//!
//! Here: scale factor 1.0 = 6 000 lineitem rows and 4 source files per SF
//! unit (the 100 GB→40-files ratio scaled down). Expect the `time/SF`
//! column to *fall* as SF grows — the sub-linear shape.

use polaris_bench::{
    bench_config, dump_metrics_snapshot, engine_with_latency, header, ingest_model, ms,
};
use polaris_dcp::{CostEstimate, ElasticAllocator, ResourceAllocator};
use polaris_workloads::tpch;
use std::time::Instant;

fn main() {
    header(
        "Figure 7",
        "lineitem load time vs scale factor (elastic resources); labels = resource factor",
    );
    println!(
        "{:>6} {:>8} {:>7} {:>7} {:>12} {:>16}",
        "sf", "rows", "files", "nodes", "load_ms", "ms_per_sf_unit"
    );
    let allocator = ElasticAllocator {
        cpu_per_node: 1.0,
        max_nodes: None,
    };
    let mut baseline_nodes = None;
    let mut last_metrics = None;
    for sf in [0.5f64, 1.0, 2.0, 4.0, 8.0] {
        let files = ((4.0 * sf).round() as usize).max(1);
        let rows = tpch::rows_at("lineitem", sf);
        let bytes = rows as u64 * 100; // ~100 B/row estimate, as the FE would
        let estimate = CostEstimate {
            bytes,
            files,
            // One cost unit per source file's worth of work at this scale.
            cpu_cost: files as f64,
        };
        let nodes = allocator.nodes_for(&estimate);
        let base = *baseline_nodes.get_or_insert(nodes);

        let mut config = bench_config();
        config.distributions = files as u32;
        config.max_write_tasks = files;
        let engine = engine_with_latency(2, nodes, 1, config, ingest_model());
        let mut session = engine.session();
        session.execute(&tpch::ddl_of("lineitem")).unwrap();

        // One bulk-load statement over all source files. With
        // `distributions = files`, every source file maps to one write
        // task, so parallelism is capped by the file count exactly as in
        // the paper (§7.1).
        let sources = tpch::source_files("lineitem", sf, 42, files);
        let all = polaris_core::RecordBatch::concat(&sources).unwrap();
        let started = Instant::now();
        let mut txn = engine.begin();
        txn.insert("lineitem", &all).unwrap();
        txn.commit().unwrap();
        let elapsed = started.elapsed();
        last_metrics = Some(engine.metrics_snapshot());

        println!(
            "{:>6.1} {:>8} {:>7} {:>7} {:>12} {:>16.2}   resource_factor={:.1}x",
            sf,
            rows,
            files,
            nodes,
            ms(elapsed),
            elapsed.as_secs_f64() * 1e3 / sf,
            nodes as f64 / base as f64,
        );
    }
    println!();
    println!("shape check: ms_per_sf_unit should DECREASE with sf (sub-linear load time)");
    // Dump the engine-wide metrics of the largest run next to the figure
    // output so regressions in store traffic / task counts are diffable.
    if let Some(snapshot) = last_metrics {
        dump_metrics_snapshot("fig7_ingestion", &snapshot);
    }
}
