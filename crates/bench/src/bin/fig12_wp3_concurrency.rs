//! Figure 12: the LST-Bench WP3 concurrency phases on the Polaris
//! transactional engine.
//!
//! Three SU (single-user power run) measurements: concurrent with DM,
//! alone, and concurrent with an explicit Optimize pass. The paper expects
//! SU to take *longer* with concurrent DM — not from blocking (SI never
//! blocks readers) but because each query's fresh snapshot sees newly
//! committed data: snapshot extensions, cache misses, and compacted files
//! to re-read.

use polaris_bench::{
    bench_config, cloud_model, dump_chrome_trace, dump_metrics_snapshot, engine_with_latency,
    header, ms,
};
use polaris_dcp::WorkloadClass;
use polaris_workloads::lstbench;
use std::time::Duration;

const SF: f64 = 4.0;

fn main() {
    header(
        "Figure 12",
        "LST-Bench WP3 phases: SU concurrent with DM, SU alone, SU concurrent with Optimize",
    );
    let mut config = bench_config();
    config.compact_min_rows = 64;
    // Make every DM round trip the compaction trigger: committed
    // compaction rewriting data files is the paper's dominant cause of SU
    // slowdown under concurrent DM ("committed data compaction that
    // requires another copy of data to be read into the cache", §7.4).
    config.compact_max_deleted = 0.02;
    let engine = engine_with_latency(6, 4, 2, config, cloud_model());
    lstbench::setup_tpcds(&engine, SF, 42).unwrap();
    // Warm caches with one SU pass before measuring.
    lstbench::run_su(&engine).unwrap();

    let report = lstbench::run_wp3(&engine, SF, 42).unwrap();

    // Node-loss drill, after the measured phases so the bounded trace ring
    // is sure to retain it: victim write nodes join the pool, a DM round
    // starts, and the victims die while its write tasks are in flight.
    // Tasks caught on a dead node report NodeLost and are retried
    // elsewhere — §4.3's claim. Whether a given kill catches a task is a
    // race, so the drill repeats (with a sliding kill delay) until the
    // pool meter confirms a loss; the exported Chrome trace then shows
    // dcp.task spans with attempt > 0 / outcome=node_lost in Perfetto.
    let baseline = engine.pool().stats().node_losses;
    let mut drill_rounds = 0usize;
    while engine.pool().stats().node_losses == baseline && drill_rounds < 50 {
        drill_rounds += 1;
        let victims = engine.pool().add_nodes(WorkloadClass::Write, 2, 1);
        let killer = {
            let pool = std::sync::Arc::clone(engine.pool());
            let delay = Duration::from_millis(2 + 3 * drill_rounds as u64);
            std::thread::spawn(move || {
                std::thread::sleep(delay);
                for id in victims {
                    pool.kill_node(id);
                }
            })
        };
        lstbench::run_dm(&engine, 100 + drill_rounds, SF, 42).unwrap();
        killer.join().unwrap();
    }
    let pool_stats = engine.pool().stats();

    println!("{:>22} {:>12}", "phase", "su_ms");
    println!("{:>22} {:>12}", "SU || DM", ms(report.su_with_dm.total));
    println!("{:>22} {:>12}", "SU alone", ms(report.su_alone.total));
    println!(
        "{:>22} {:>12}",
        "SU || Optimize",
        ms(report.su_with_optimize.total)
    );
    println!();
    println!(
        "dm work during phase 1: +{} rows, -{} rows",
        report.dm.inserted, report.dm.deleted
    );
    let slowdown = report.su_with_dm.total.as_secs_f64() / report.su_alone.total.as_secs_f64();
    println!();
    println!(
        "shape check: SU||DM / SU-alone = {slowdown:.2}x \
         (paper: SU takes significantly longer with concurrent DM; \
         snapshot isolation keeps every query consistent throughout)"
    );
    println!("per-query latencies (ms): name, with_dm, alone, with_optimize");
    for ((n, a), ((_, b), (_, c))) in report.su_with_dm.queries.iter().zip(
        report
            .su_alone
            .queries
            .iter()
            .zip(&report.su_with_optimize.queries),
    ) {
        println!("  {:<28} {:>9} {:>9} {:>9}", n, ms(*a), ms(*b), ms(*c));
    }
    println!();
    println!(
        "node-loss drill: {} task attempts, {} retries, {} node losses over {} drill round(s) \
         (victim write nodes killed with DM in flight; work rescheduled, run still correct)",
        pool_stats.attempts, pool_stats.retries, pool_stats.node_losses, drill_rounds
    );
    dump_metrics_snapshot("fig12_wp3", &engine.metrics_snapshot());
    dump_chrome_trace("fig12_wp3", &engine);
}
