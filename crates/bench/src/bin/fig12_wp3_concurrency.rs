//! Figure 12: the LST-Bench WP3 concurrency phases on the Polaris
//! transactional engine.
//!
//! Three SU (single-user power run) measurements: concurrent with DM,
//! alone, and concurrent with an explicit Optimize pass. The paper expects
//! SU to take *longer* with concurrent DM — not from blocking (SI never
//! blocks readers) but because each query's fresh snapshot sees newly
//! committed data: snapshot extensions, cache misses, and compacted files
//! to re-read.

use polaris_bench::{bench_config, cloud_model, engine_with_latency, header, ms};
use polaris_workloads::lstbench;

const SF: f64 = 4.0;

fn main() {
    header(
        "Figure 12",
        "LST-Bench WP3 phases: SU concurrent with DM, SU alone, SU concurrent with Optimize",
    );
    let mut config = bench_config();
    config.compact_min_rows = 64;
    // Make every DM round trip the compaction trigger: committed
    // compaction rewriting data files is the paper's dominant cause of SU
    // slowdown under concurrent DM ("committed data compaction that
    // requires another copy of data to be read into the cache", §7.4).
    config.compact_max_deleted = 0.02;
    let engine = engine_with_latency(6, 4, 2, config, cloud_model());
    lstbench::setup_tpcds(&engine, SF, 42).unwrap();
    // Warm caches with one SU pass before measuring.
    lstbench::run_su(&engine).unwrap();

    let report = lstbench::run_wp3(&engine, SF, 42).unwrap();

    println!("{:>22} {:>12}", "phase", "su_ms");
    println!("{:>22} {:>12}", "SU || DM", ms(report.su_with_dm.total));
    println!("{:>22} {:>12}", "SU alone", ms(report.su_alone.total));
    println!(
        "{:>22} {:>12}",
        "SU || Optimize",
        ms(report.su_with_optimize.total)
    );
    println!();
    println!(
        "dm work during phase 1: +{} rows, -{} rows",
        report.dm.inserted, report.dm.deleted
    );
    let slowdown = report.su_with_dm.total.as_secs_f64() / report.su_alone.total.as_secs_f64();
    println!();
    println!(
        "shape check: SU||DM / SU-alone = {slowdown:.2}x \
         (paper: SU takes significantly longer with concurrent DM; \
         snapshot isolation keeps every query consistent throughout)"
    );
    println!("per-query latencies (ms): name, with_dm, alone, with_optimize");
    for ((n, a), ((_, b), (_, c))) in report.su_with_dm.queries.iter().zip(
        report
            .su_alone
            .queries
            .iter()
            .zip(&report.su_with_optimize.queries),
    ) {
        println!("  {:<28} {:>9} {:>9} {:>9}", n, ms(*a), ms(*b), ms(*c));
    }
}
