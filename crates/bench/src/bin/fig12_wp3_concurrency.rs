//! Figure 12: the LST-Bench WP3 concurrency phases on the Polaris
//! transactional engine.
//!
//! Three SU (single-user power run) measurements: concurrent with DM,
//! alone, and concurrent with an explicit Optimize pass. The paper expects
//! SU to take *longer* with concurrent DM — not from blocking (SI never
//! blocks readers) but because each query's fresh snapshot sees newly
//! committed data: snapshot extensions, cache misses, and compacted files
//! to re-read.

use polaris_bench::{
    bench_config, cloud_model, dump_chrome_trace, dump_metrics_snapshot, dump_time_series,
    engine_with_latency, header, ms,
};
use polaris_catalog::{Catalog, ConflictGranularity, IsolationLevel};
use polaris_dcp::WorkloadClass;
use polaris_obs::{http_get, CatalogMeter, Harvester, HealthFn, MetricsRegistry, TelemetryServer};
use polaris_store::{BlobPath, Bytes, LatencyStore, MemoryStore, ObjectStore, Stamp};
use polaris_workloads::lstbench;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const SF: f64 = 4.0;

fn main() {
    // `--disjoint-only` skips the WP3 phases and runs just the
    // disjoint-table concurrent-writer mode (quick scaling check).
    if std::env::args().any(|a| a == "--disjoint-only") {
        disjoint_writer_scaling();
        return;
    }
    // `--group-commit` runs just the group-commit batch-size sweep.
    if std::env::args().any(|a| a == "--group-commit") {
        group_commit_sweep();
        return;
    }
    // `--telemetry` runs the disjoint-writer commit workload while serving
    // the registry over HTTP and self-scrapes `/metrics`, asserting the
    // exposition agrees with the in-process snapshot.
    if std::env::args().any(|a| a == "--telemetry") {
        telemetry_selfscrape();
        return;
    }
    header(
        "Figure 12",
        "LST-Bench WP3 phases: SU concurrent with DM, SU alone, SU concurrent with Optimize",
    );
    let mut config = bench_config();
    config.compact_min_rows = 64;
    // Make every DM round trip the compaction trigger: committed
    // compaction rewriting data files is the paper's dominant cause of SU
    // slowdown under concurrent DM ("committed data compaction that
    // requires another copy of data to be read into the cache", §7.4).
    config.compact_max_deleted = 0.02;
    let engine = engine_with_latency(6, 4, 2, config, cloud_model());
    lstbench::setup_tpcds(&engine, SF, 42).unwrap();
    // Warm caches with one SU pass before measuring.
    lstbench::run_su(&engine).unwrap();

    let report = lstbench::run_wp3(&engine, SF, 42).unwrap();

    // Node-loss drill, after the measured phases so the bounded trace ring
    // is sure to retain it: victim write nodes join the pool, a DM round
    // starts, and the victims die while its write tasks are in flight.
    // Tasks caught on a dead node report NodeLost and are retried
    // elsewhere — §4.3's claim. Whether a given kill catches a task is a
    // race, so the drill repeats (with a sliding kill delay) until the
    // pool meter confirms a loss; the exported Chrome trace then shows
    // dcp.task spans with attempt > 0 / outcome=node_lost in Perfetto.
    let baseline = engine.pool().stats().node_losses;
    let mut drill_rounds = 0usize;
    while engine.pool().stats().node_losses == baseline && drill_rounds < 50 {
        drill_rounds += 1;
        let victims = engine.pool().add_nodes(WorkloadClass::Write, 2, 1);
        let killer = {
            let pool = std::sync::Arc::clone(engine.pool());
            let delay = Duration::from_millis(2 + 3 * drill_rounds as u64);
            std::thread::spawn(move || {
                std::thread::sleep(delay);
                for id in victims {
                    pool.kill_node(id);
                }
            })
        };
        lstbench::run_dm(&engine, 100 + drill_rounds, SF, 42).unwrap();
        killer.join().unwrap();
    }
    let pool_stats = engine.pool().stats();

    println!("{:>22} {:>12}", "phase", "su_ms");
    println!("{:>22} {:>12}", "SU || DM", ms(report.su_with_dm.total));
    println!("{:>22} {:>12}", "SU alone", ms(report.su_alone.total));
    println!(
        "{:>22} {:>12}",
        "SU || Optimize",
        ms(report.su_with_optimize.total)
    );
    println!();
    println!(
        "dm work during phase 1: +{} rows, -{} rows",
        report.dm.inserted, report.dm.deleted
    );
    let slowdown = report.su_with_dm.total.as_secs_f64() / report.su_alone.total.as_secs_f64();
    println!();
    println!(
        "shape check: SU||DM / SU-alone = {slowdown:.2}x \
         (paper: SU takes significantly longer with concurrent DM; \
         snapshot isolation keeps every query consistent throughout)"
    );
    println!("per-query latencies (ms): name, with_dm, alone, with_optimize");
    for ((n, a), ((_, b), (_, c))) in report.su_with_dm.queries.iter().zip(
        report
            .su_alone
            .queries
            .iter()
            .zip(&report.su_with_optimize.queries),
    ) {
        println!("  {:<28} {:>9} {:>9} {:>9}", n, ms(*a), ms(*b), ms(*c));
    }
    println!();
    println!(
        "node-loss drill: {} task attempts, {} retries, {} node losses over {} drill round(s) \
         (victim write nodes killed with DM in flight; work rescheduled, run still correct)",
        pool_stats.attempts, pool_stats.retries, pool_stats.node_losses, drill_rounds
    );
    dump_metrics_snapshot("fig12_wp3", &engine.metrics_snapshot());
    dump_chrome_trace("fig12_wp3", &engine);

    disjoint_writer_scaling();
}

/// Catalog commits per second for `writers` threads, each running a full
/// write transaction against its own table (disjoint write-key
/// footprints): upload the transaction-manifest blob to the
/// cloud-latency-modeled store, record a data-file-granularity write set,
/// then validate + install under the commit shards (§4.1.2). The blob
/// round trip is wait, not compute, so concurrent writers overlap it; the
/// commit protocol decides whether the metadata step lets them.
fn commit_throughput(
    catalog: &Arc<Catalog>,
    store: &Arc<LatencyStore<MemoryStore>>,
    writers: usize,
    commits: usize,
    files: usize,
) -> f64 {
    // Shard assignment is table-affine by id hash, so consecutive table
    // ids can collide on a commit shard; writers sharing one would
    // serialize in `record_write_set` and the run would measure that
    // accident, not the commit protocol. Keep allocating tables and take
    // only those that keep the writers spread evenly over the shards —
    // perfectly disjoint whenever `writers <= commit_shards()`.
    let shard_count = catalog.commit_shards();
    let quota = writers.div_ceil(shard_count);
    let mut per_shard = vec![0usize; shard_count];
    let mut tables = Vec::with_capacity(writers);
    let mut ddl = catalog.begin(IsolationLevel::Snapshot);
    for n in 0.. {
        if tables.len() == writers {
            break;
        }
        assert!(
            n < 64 * shard_count.max(writers),
            "shard spread unreachable"
        );
        let t = catalog
            .create_table(&mut ddl, &format!("t{n}"), "{}", "lake/t", &[])
            .unwrap();
        let shard = catalog.table_commit_shard(t);
        if per_shard[shard] < quota {
            per_shard[shard] += 1;
            tables.push(t);
        }
    }
    catalog.commit(&mut ddl).unwrap();
    let barrier = Arc::new(Barrier::new(writers + 1));
    let threads: Vec<_> = tables
        .into_iter()
        .enumerate()
        .map(|(w, table)| {
            let catalog = Arc::clone(catalog);
            let store = Arc::clone(store);
            let barrier = Arc::clone(&barrier);
            let modified: Vec<String> = (0..files).map(|f| format!("w{w}/f{f}")).collect();
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..commits {
                    let mut txn = catalog.begin(IsolationLevel::Snapshot);
                    catalog
                        .record_write_set(&mut txn, table, &modified, ConflictGranularity::DataFile)
                        .unwrap();
                    let manifest = BlobPath::new(format!("manifests/w{w}/m{i}")).unwrap();
                    store
                        .put(&manifest, Bytes::from_static(&[0u8; 256]), Stamp(txn.id.0))
                        .unwrap();
                    catalog
                        .commit_write(&mut txn, &[(table, manifest.as_str().to_owned())])
                        .expect("disjoint-table commits never conflict");
                }
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    for t in threads {
        t.join().unwrap();
    }
    (writers * commits) as f64 / start.elapsed().as_secs_f64()
}

/// The group-commit mode: disjoint-writer commit throughput vs the
/// sequencer batch ceiling, with a durable commit-log record written
/// through the cloud latency model *per batch* — the write batching
/// amortizes. Asserts throughput improves monotonically with batch size,
/// that the commit clock stays dense (one timestamp per commit, none
/// consumed by batching), and that contended rounds still abort exactly
/// as the ungrouped protocol does.
fn group_commit_sweep() {
    const WRITERS: usize = 8;
    const COMMITS: usize = 60;
    const FILES: usize = 16;
    let batch_sizes = [1usize, 2, 4, 8];
    println!();
    println!("--- group-commit batch-size sweep ---");
    println!(
        "{WRITERS} writers x {COMMITS} commits, {FILES}-file write sets, 16 commit shards, \
         1 ms batch window (a full batch drains early);"
    );
    println!(
        "each batch writes one 4 KiB commit-log record through the cloud latency model \
         inside the sequencer section"
    );
    println!(
        "{:>10} {:>12} {:>12} {:>14} {:>16}",
        "max_batch", "commits/s", "batches", "mean_batch", "seq_wait_ms_avg"
    );
    let mut throughputs = Vec::new();
    for &max_batch in &batch_sizes {
        let registry = MetricsRegistry::new();
        let meter = CatalogMeter::from_registry_sharded(&registry, 16);
        let catalog = Arc::new(Catalog::with_meter_sharded(meter, 16));
        let store = Arc::new(LatencyStore::new(MemoryStore::new(), cloud_model()));
        catalog.set_group_commit(max_batch, Duration::from_micros(1000));
        {
            // The amortized durable write: one commit-log record per
            // sequencer section, covering every batch member.
            let store = Arc::clone(&store);
            let records = Arc::new(std::sync::atomic::AtomicU64::new(0));
            catalog.set_commit_log(Some(Arc::new(
                move |batch: &polaris_catalog::CommitBatch, _records| {
                    let n = records.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let path =
                        BlobPath::new(format!("commitlog/b{n}")).map_err(|e| e.to_string())?;
                    store
                        .put(
                            &path,
                            Bytes::from_static(&[0u8; 4096]),
                            Stamp(batch.first_ts.0),
                        )
                        .map_err(|e| e.to_string())
                },
            )));
        }
        let thr = commit_throughput(&catalog, &store, WRITERS, COMMITS, FILES);
        // Dense-clock check: the DDL commit plus exactly one timestamp per
        // published commit — batching consumed nothing extra.
        let expected = (WRITERS * COMMITS) as u64 + 1;
        assert_eq!(
            catalog.now().0,
            expected,
            "commit clock must stay dense under group commit (batch={max_batch})"
        );
        let snap = registry.snapshot();
        let batches = snap
            .histograms
            .get("catalog.group_commit.batch_size")
            .expect("batch-size histogram registered");
        // +1: the table-creation DDL commit sequences through a
        // singleton batch too.
        assert_eq!(
            batches.sum_ns,
            (WRITERS * COMMITS) as u64 + 1,
            "every commit counted in exactly one batch"
        );
        let waits = snap
            .histograms
            .get("catalog.sequencer_wait_ns")
            .expect("sequencer-wait histogram registered");
        println!(
            "{:>10} {:>12.0} {:>12} {:>14.2} {:>16.3}",
            max_batch,
            thr,
            batches.count,
            batches.sum_ns as f64 / batches.count.max(1) as f64,
            waits.sum_ns as f64 / waits.count.max(1) as f64 / 1e6,
        );
        throughputs.push(thr);
    }
    for pair in throughputs.windows(2) {
        assert!(
            pair[1] > pair[0],
            "throughput must improve monotonically with batch size \
             (got {throughputs:?} for batches {batch_sizes:?})"
        );
    }
    let gain = throughputs.last().unwrap() / throughputs[0];
    println!();
    println!(
        "shape check: batch 8 gives {gain:.2}x batch 1 at {WRITERS} writers (the per-batch \
         commit-log round trip serializes inside the sequencer; batching amortizes it \
         without widening the conflict window or skewing the commit clock)"
    );

    // Contention is unchanged by batching: same-snapshot writers of one
    // table still resolve first-committer-wins, one winner per round.
    let registry = MetricsRegistry::new();
    let meter = CatalogMeter::from_registry_sharded(&registry, 16);
    let catalog = Arc::new(Catalog::with_meter_sharded(meter, 16));
    catalog.set_group_commit(8, Duration::from_micros(200));
    let mut ddl = catalog.begin(IsolationLevel::Snapshot);
    let hot = catalog
        .create_table(&mut ddl, "hot", "{}", "lake/hot", &[])
        .unwrap();
    catalog.commit(&mut ddl).unwrap();
    let rounds = 32;
    let contenders = 4;
    for _ in 0..rounds {
        let txns: Vec<_> = (0..contenders)
            .map(|_| catalog.begin(IsolationLevel::Snapshot))
            .collect();
        let wins: usize = txns
            .into_iter()
            .map(|mut txn| {
                let catalog = Arc::clone(&catalog);
                std::thread::spawn(move || {
                    catalog
                        .record_write_set(&mut txn, hot, &[], ConflictGranularity::Table)
                        .unwrap();
                    catalog
                        .commit_write(&mut txn, &[(hot, "m".to_owned())])
                        .is_ok() as usize
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|t| t.join().unwrap())
            .sum();
        assert_eq!(wins, 1, "exactly one winner per contended round");
    }
    let snap = registry.snapshot();
    let expected_conflicts = (rounds * (contenders - 1)) as u64;
    assert_eq!(snap.counter("catalog.ww_conflicts"), expected_conflicts);
    println!(
        "conflict check: {rounds} contended rounds x {contenders} writers with group commit on -> \
         {} commits, {} WW conflicts (expected {expected_conflicts}; batching loses no conflicts)",
        snap.counter("catalog.commits") - 1,
        snap.counter("catalog.ww_conflicts"),
    );
    dump_metrics_snapshot("fig12_group_commit", &registry.snapshot());
}

/// The telemetry mode: the group-commit disjoint-writer workload with a
/// [`Harvester`] sampling the registry and a [`TelemetryServer`] exposing
/// it, scraped concurrently over real HTTP. Asserts every mid-run scrape
/// is valid Prometheus text, and that after the workload quiesces the
/// scraped `catalog_commits_total` equals the in-process snapshot exactly
/// (the endpoint encodes a fresh snapshot per scrape, so agreement is
/// immediate, not delayed by a harvester tick).
fn telemetry_selfscrape() {
    const WRITERS: usize = 8;
    const COMMITS: usize = 60;
    const FILES: usize = 16;
    println!();
    println!("--- telemetry self-scrape mode ---");
    let registry = MetricsRegistry::new();
    let meter = CatalogMeter::from_registry_sharded(&registry, 16);
    let catalog = Arc::new(Catalog::with_meter_sharded(meter, 16));
    let store = Arc::new(LatencyStore::new(MemoryStore::new(), cloud_model()));
    catalog.set_group_commit(8, Duration::from_micros(1000));

    let harvester = Harvester::start(Arc::clone(&registry), Duration::from_millis(25), 512);
    let health: HealthFn = {
        let registry = Arc::clone(&registry);
        Arc::new(move || {
            format!(
                "{{\"status\":\"ok\",\"commits\":{}}}",
                registry.snapshot().counter("catalog.commits")
            )
        })
    };
    let server = TelemetryServer::start(
        "127.0.0.1:0".parse().unwrap(),
        Arc::clone(&registry),
        health,
    )
    .expect("bind telemetry endpoint");
    let addr = server.local_addr();
    println!("serving http://{addr}/metrics while {WRITERS} writers commit");

    // Concurrent scraper: hammers the endpoint over real HTTP while the
    // commit workload runs; every response must be well-formed.
    let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scraper = {
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut scrapes = 0u64;
            while !done.load(std::sync::atomic::Ordering::Relaxed) {
                let (status, body) = http_get(addr, "/metrics").expect("scrape /metrics");
                assert_eq!(status, 200, "mid-run scrape failed");
                assert!(
                    body.lines()
                        .any(|l| l == "# TYPE catalog_commits_total counter"),
                    "exposition must declare the commits counter"
                );
                let (status, health) = http_get(addr, "/health").expect("scrape /health");
                assert_eq!(status, 200);
                assert!(health.contains("\"status\""));
                scrapes += 1;
                std::thread::sleep(Duration::from_millis(10));
            }
            scrapes
        })
    };

    let thr = commit_throughput(&catalog, &store, WRITERS, COMMITS, FILES);
    done.store(true, std::sync::atomic::Ordering::Relaxed);
    let scrapes = scraper.join().unwrap();

    // Quiesced: the scraped counter must equal the in-process snapshot.
    let (status, body) = http_get(addr, "/metrics").expect("final scrape");
    assert_eq!(status, 200);
    let scraped: u64 = body
        .lines()
        .find_map(|l| l.strip_prefix("catalog_commits_total "))
        .expect("catalog_commits_total exposed")
        .trim()
        .parse()
        .expect("counter value parses");
    let in_process = registry.snapshot().counter("catalog.commits");
    assert_eq!(
        scraped, in_process,
        "exposition must agree with metrics_snapshot() once quiesced"
    );

    // The harvester saw the run too: the commit-rate ring must contain a
    // non-zero sample.
    let series = harvester.time_series();
    let peak_rate = series
        .rates
        .get("catalog.commits")
        .map(|r| r.iter().map(|p| p.value).fold(0.0, f64::max))
        .unwrap_or(0.0);
    assert!(
        peak_rate > 0.0,
        "harvester must have sampled a non-zero commit rate"
    );

    println!(
        "{} commits at {thr:.0} commits/s; {scrapes} concurrent scrapes, all valid",
        in_process
    );
    println!(
        "self-scrape check: catalog_commits_total = {scraped} over HTTP == {in_process} \
         in-process; peak harvested rate {peak_rate:.0} commits/s over {} ticks",
        series.ticks
    );
    dump_metrics_snapshot("fig12_telemetry", &registry.snapshot());
    dump_time_series("fig12_telemetry", &series);
}

/// The disjoint-table concurrent-writer mode: commit throughput vs writer
/// count with the commit lock sharded (16) and unsharded (1), plus a
/// contended round proving overlapping footprints still abort.
fn disjoint_writer_scaling() {
    const COMMITS: usize = 500;
    const FILES: usize = 64;
    let writer_counts = [1usize, 2, 4, 8, 16];
    println!();
    println!("--- disjoint-table concurrent-writer mode ---");
    println!(
        "{} commits/writer, {}-file write sets at DataFile granularity, one table per writer;",
        COMMITS, FILES
    );
    println!("each commit uploads a 256 B manifest blob through the cloud latency model first");
    println!(
        "{:>8} {:>22} {:>22}",
        "writers", "commits/s (1 shard)", "commits/s (16 shards)"
    );
    let mut thr = [Vec::new(), Vec::new()];
    let mut last_registry = None;
    for &writers in &writer_counts {
        let mut row = [0f64; 2];
        for (col, shards) in [1usize, 16].into_iter().enumerate() {
            let registry = MetricsRegistry::new();
            let meter = CatalogMeter::from_registry_sharded(&registry, shards);
            let catalog = Arc::new(Catalog::with_meter_sharded(meter, shards));
            let store = Arc::new(LatencyStore::new(MemoryStore::new(), cloud_model()));
            row[col] = commit_throughput(&catalog, &store, writers, COMMITS, FILES);
            thr[col].push(row[col]);
            if shards == 16 {
                last_registry = Some(registry);
            }
        }
        println!("{:>8} {:>22.0} {:>22.0}", writers, row[0], row[1]);
    }
    let max_writers = *writer_counts.last().unwrap();
    let scale_sharded = thr[1].last().unwrap() / thr[1][0];
    assert!(
        scale_sharded > 4.0,
        "sharded commit throughput should scale with disjoint concurrent writers \
         (measured {scale_sharded:.2}x from 1 to {max_writers})"
    );
    let scale_global = thr[0].last().unwrap() / thr[0][0];
    let vs_global = thr[1].last().unwrap() / thr[0].last().unwrap();
    println!();
    println!(
        "shape check: {max_writers} writers vs 1 gives {scale_sharded:.2}x with 16 shards vs \
         {scale_global:.2}x with the single global lock; sharded is {vs_global:.2}x the global \
         lock at {max_writers} writers (disjoint-table commits overlap their blob round trips \
         and their validate/install work; a single commit lock convoys them)"
    );

    // Overlapping footprints must still abort: same table, table
    // granularity, all transactions begun at one snapshot.
    let registry = MetricsRegistry::new();
    let meter = CatalogMeter::from_registry_sharded(&registry, 16);
    let catalog = Arc::new(Catalog::with_meter_sharded(meter, 16));
    let mut ddl = catalog.begin(IsolationLevel::Snapshot);
    let hot = catalog
        .create_table(&mut ddl, "hot", "{}", "lake/hot", &[])
        .unwrap();
    catalog.commit(&mut ddl).unwrap();
    let rounds = 32;
    let contenders = 4;
    for _ in 0..rounds {
        let txns: Vec<_> = (0..contenders)
            .map(|_| catalog.begin(IsolationLevel::Snapshot))
            .collect();
        let wins: usize = txns
            .into_iter()
            .map(|mut txn| {
                let catalog = Arc::clone(&catalog);
                std::thread::spawn(move || {
                    catalog
                        .record_write_set(&mut txn, hot, &[], ConflictGranularity::Table)
                        .unwrap();
                    catalog
                        .commit_write(&mut txn, &[(hot, "m".to_owned())])
                        .is_ok() as usize
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|t| t.join().unwrap())
            .sum();
        assert_eq!(wins, 1, "exactly one winner per contended round");
    }
    let snap = registry.snapshot();
    let expected_conflicts = (rounds * (contenders - 1)) as u64;
    assert_eq!(snap.counter("catalog.ww_conflicts"), expected_conflicts);
    println!(
        "conflict check: {rounds} contended rounds x {contenders} writers on one table -> \
         {} commits, {} WW conflicts (expected {expected_conflicts}; sharding loses no conflicts)",
        snap.counter("catalog.commits") - 1,
        snap.counter("catalog.ww_conflicts"),
    );
    if let Some(registry) = last_registry {
        dump_metrics_snapshot("fig12_disjoint", &registry.snapshot());
    }
}
