//! Allocation regression gate: assert a hard heap-allocation budget on
//! the warm commit path.
//!
//! Warms an in-memory engine with auto-commit INSERTs, then measures
//! engine-wide allocations per committed transaction over several
//! windows and compares the **median** window against the recorded
//! baseline in `results/alloc_gate_baseline.json`. The run fails (exit 1)
//! when the median exceeds the baseline by more than 10% — the
//! regression gate `scripts/alloc_gate.sh` wires into tier-1.
//!
//! A second measurement gates the warm **system-table scan** path the
//! same way (`SELECT COUNT(name) FROM polaris.metrics`): introspection is
//! polled by dashboards, so its per-scan allocation count is budgeted
//! alongside the commit path's.
//!
//! Requires the tracking allocator (`--features track-alloc`); without it
//! the binary prints a skip notice and exits 0 so default builds stay
//! green. `--record` rewrites the baseline from the current measurement.
//!
//! Determinism: no harvester thread (`telemetry_tick_ms = 0`), no tracing
//! ring, fixed row values, and a median over windows to shrug off
//! one-off growth events (hash-map rehashes, vector doublings).

use polaris_core::EngineConfig;

/// Measurement windows; the median window is the gate's statistic.
const WINDOWS: usize = 9;
/// Committed transactions per window.
const COMMITS_PER_WINDOW: usize = 16;
/// Warm-up commits before any window is measured (fills caches, grows
/// maps and buffers to steady-state size).
const WARMUP_COMMITS: usize = 64;
/// System-table scans per measurement window (second gated path: a warm
/// `polaris.metrics` scan must also stay within its recorded budget).
const SCANS_PER_WINDOW: usize = 8;
/// Warm-up scans before the scan windows are measured.
const WARMUP_SCANS: usize = 16;
/// Allowed growth over the recorded baseline before the gate fails.
const TOLERANCE: f64 = 0.10;
/// Where the baseline lives, relative to the repo root.
const BASELINE_PATH: &str = "results/alloc_gate_baseline.json";

fn main() {
    if !polaris_obs::alloc::tracking_enabled() {
        println!("alloc gate: skipped (build with --features track-alloc)");
        return;
    }
    let record = std::env::args().any(|a| a == "--record");
    let phases = std::env::args().any(|a| a == "--phases");

    let config = EngineConfig {
        // No background harvester and no tracing ring: every allocation
        // the windows see comes from the commit path itself.
        telemetry_tick_ms: 0,
        trace_capacity: 0,
        ..EngineConfig::default()
    };
    let engine = polaris_bench::engine_with_topology(2, 2, 2, config);
    let mut session = engine.session();
    session
        .execute("CREATE TABLE gate (id BIGINT, v BIGINT)")
        .expect("create table");

    let mut commit = |i: usize| {
        session
            .execute(&format!("INSERT INTO gate VALUES ({i}, {})", i * 7))
            .expect("warm-path insert commits");
    };
    for i in 0..WARMUP_COMMITS {
        commit(i);
    }

    let phase_before = polaris_obs::alloc::phase_totals();
    let mut allocs_per_commit: Vec<u64> = Vec::with_capacity(WINDOWS);
    let mut bytes_per_commit: Vec<u64> = Vec::with_capacity(WINDOWS);
    for w in 0..WINDOWS {
        let before = polaris_obs::alloc::totals();
        for i in 0..COMMITS_PER_WINDOW {
            commit(WARMUP_COMMITS + w * COMMITS_PER_WINDOW + i);
        }
        let after = polaris_obs::alloc::totals();
        let n = COMMITS_PER_WINDOW as u64;
        allocs_per_commit.push(after.allocs.saturating_sub(before.allocs) / n);
        bytes_per_commit.push(after.alloc_bytes.saturating_sub(before.alloc_bytes) / n);
    }
    if phases {
        // Per-phase attribution over every measured commit — the map of
        // where the remaining allocations live.
        let phase_after = polaris_obs::alloc::phase_totals();
        let commits = (WINDOWS * COMMITS_PER_WINDOW) as u64;
        println!("alloc gate: per-phase allocs/commit over {commits} commits:");
        for (i, phase) in polaris_obs::AllocPhase::ALL.iter().enumerate() {
            let d_allocs = phase_after[i].allocs.saturating_sub(phase_before[i].allocs);
            let d_bytes = phase_after[i].bytes.saturating_sub(phase_before[i].bytes);
            if d_allocs > 0 {
                println!(
                    "  {:>18}: {:>6.1} allocs / {:>8.0} bytes",
                    phase.label(),
                    d_allocs as f64 / commits as f64,
                    d_bytes as f64 / commits as f64,
                );
            }
        }
    }
    allocs_per_commit.sort_unstable();
    bytes_per_commit.sort_unstable();
    let allocs = allocs_per_commit[WINDOWS / 2];
    let bytes = bytes_per_commit[WINDOWS / 2];
    println!(
        "alloc gate: median {allocs} allocs / {bytes} bytes per committed txn \
         ({WINDOWS} windows x {COMMITS_PER_WINDOW} commits, {WARMUP_COMMITS} warm-up)"
    );

    // Second gated path: a warm system-table scan. `polaris.metrics` is
    // the introspection hot path (dashboards poll it), and its row count
    // is stable once the registry is warm, so its allocation profile is
    // as deterministic as the commit path's.
    let mut scan = || {
        session
            .query("SELECT COUNT(name) AS n FROM polaris.metrics")
            .expect("warm system scan");
    };
    for _ in 0..WARMUP_SCANS {
        scan();
    }
    let scan_phase_before = polaris_obs::alloc::phase_totals();
    let mut allocs_per_scan: Vec<u64> = Vec::with_capacity(WINDOWS);
    let mut bytes_per_scan: Vec<u64> = Vec::with_capacity(WINDOWS);
    for _ in 0..WINDOWS {
        let before = polaris_obs::alloc::totals();
        for _ in 0..SCANS_PER_WINDOW {
            scan();
        }
        let after = polaris_obs::alloc::totals();
        let n = SCANS_PER_WINDOW as u64;
        allocs_per_scan.push(after.allocs.saturating_sub(before.allocs) / n);
        bytes_per_scan.push(after.alloc_bytes.saturating_sub(before.alloc_bytes) / n);
    }
    if phases {
        let scan_phase_after = polaris_obs::alloc::phase_totals();
        let scans = (WINDOWS * SCANS_PER_WINDOW) as u64;
        println!("alloc gate: per-phase allocs/scan over {scans} system scans:");
        for (i, phase) in polaris_obs::AllocPhase::ALL.iter().enumerate() {
            let d_allocs = scan_phase_after[i]
                .allocs
                .saturating_sub(scan_phase_before[i].allocs);
            let d_bytes = scan_phase_after[i]
                .bytes
                .saturating_sub(scan_phase_before[i].bytes);
            if d_allocs > 0 {
                println!(
                    "  {:>18}: {:>6.1} allocs / {:>8.0} bytes",
                    phase.label(),
                    d_allocs as f64 / scans as f64,
                    d_bytes as f64 / scans as f64,
                );
            }
        }
    }
    allocs_per_scan.sort_unstable();
    bytes_per_scan.sort_unstable();
    let scan_allocs = allocs_per_scan[WINDOWS / 2];
    let scan_bytes = bytes_per_scan[WINDOWS / 2];
    println!(
        "alloc gate: median {scan_allocs} allocs / {scan_bytes} bytes per warm system scan \
         ({WINDOWS} windows x {SCANS_PER_WINDOW} scans, {WARMUP_SCANS} warm-up)"
    );

    if record {
        let json = format!(
            "{{\n  \"allocs_per_commit\": {allocs},\n  \"bytes_per_commit\": {bytes},\n  \
             \"allocs_per_system_scan\": {scan_allocs},\n  \
             \"bytes_per_system_scan\": {scan_bytes},\n  \
             \"windows\": {WINDOWS},\n  \"commits_per_window\": {COMMITS_PER_WINDOW},\n  \
             \"scans_per_window\": {SCANS_PER_WINDOW}\n}}\n"
        );
        std::fs::write(BASELINE_PATH, json).expect("write baseline");
        println!("alloc gate: baseline recorded to {BASELINE_PATH}");
        return;
    }

    let raw = match std::fs::read_to_string(BASELINE_PATH) {
        Ok(raw) => raw,
        Err(_) => {
            println!("alloc gate: no baseline at {BASELINE_PATH}; run with --record first");
            std::process::exit(1);
        }
    };
    let baseline: serde_json::Value = serde_json::from_str(&raw).expect("baseline parses");
    let base_allocs = baseline["allocs_per_commit"].as_u64().unwrap_or(0);
    let budget = (base_allocs as f64 * (1.0 + TOLERANCE)) as u64;
    if base_allocs == 0 {
        println!("alloc gate: baseline has no allocs_per_commit; re-record");
        std::process::exit(1);
    }
    if allocs > budget {
        println!(
            "alloc gate: FAIL — {allocs} allocs/commit exceeds budget {budget} \
             (baseline {base_allocs} + {:.0}%)",
            TOLERANCE * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "alloc gate: ok — {allocs} allocs/commit within budget {budget} (baseline {base_allocs})"
    );
    if (allocs as f64) < base_allocs as f64 * 0.5 {
        println!(
            "alloc gate: note — commit path got >2x leaner; consider re-recording the baseline"
        );
    }

    let base_scan = baseline["allocs_per_system_scan"].as_u64().unwrap_or(0);
    if base_scan == 0 {
        println!("alloc gate: baseline has no allocs_per_system_scan; run with --record");
        std::process::exit(1);
    }
    let scan_budget = (base_scan as f64 * (1.0 + TOLERANCE)) as u64;
    if scan_allocs > scan_budget {
        println!(
            "alloc gate: FAIL — {scan_allocs} allocs/system-scan exceeds budget {scan_budget} \
             (baseline {base_scan} + {:.0}%)",
            TOLERANCE * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "alloc gate: ok — {scan_allocs} allocs/system-scan within budget {scan_budget} \
         (baseline {base_scan})"
    );
}
