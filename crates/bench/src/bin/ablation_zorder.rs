//! Ablation (§2.3): Z-order clustering vs unclustered layout under
//! range predicates.
//!
//! Clustering sorts each insert by the interleaved key before splitting
//! into files, so per-file min/max statistics become tight and range scans
//! prune most files. Measured as bytes read from storage per query.

use polaris_bench::{bench_config, dump_metrics_snapshot};
use polaris_core::{DataType, Field, Schema};
use polaris_core::{EngineConfig, PolarisEngine, RecordBatch, Value};
use polaris_dcp::{ComputePool, WorkloadClass};
use polaris_store::{MemoryStore, StatsStore};
use std::sync::Arc;

const ROWS: i64 = 50_000;
const QUERIES: usize = 20;

fn engine_with_stats(config: EngineConfig) -> (Arc<PolarisEngine>, Arc<StatsStore<MemoryStore>>) {
    let pool = Arc::new(ComputePool::with_topology(4, 4, 2));
    pool.add_nodes(WorkloadClass::System, 2, 2);
    let store = Arc::new(StatsStore::new(MemoryStore::new()));
    (PolarisEngine::new(store.clone(), pool, config), store)
}

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("k", DataType::Int64),
        Field::new("payload", DataType::Int64),
    ])
}

/// Rows arrive in shuffled key order, as real feeds do.
fn shuffled_batch() -> RecordBatch {
    let mut rows: Vec<Vec<Value>> = (0..ROWS)
        .map(|i| vec![Value::Int(i), Value::Int(i * 3)])
        .collect();
    for i in 0..rows.len() {
        let j = (i.wrapping_mul(6364136223846793005).wrapping_add(144)) % rows.len();
        rows.swap(i, j);
    }
    RecordBatch::from_rows(schema(), &rows).unwrap()
}

fn run(clustered: bool) -> (u64, u64, polaris_obs::MetricsSnapshot) {
    let mut config = bench_config();
    config.distributions = 16;
    let (engine, stats) = engine_with_stats(config);
    if clustered {
        engine
            .create_table_clustered("t", &schema(), &["k".to_owned()])
            .unwrap();
    } else {
        engine.create_table("t", &schema()).unwrap();
    }
    let mut s = engine.session();
    s.insert_batch("t", &shuffled_batch()).unwrap();

    stats.reset();
    let mut checksum = 0i64;
    for q in 0..QUERIES {
        let lo = (q as i64 * 2_311) % (ROWS - 500);
        let hi = lo + 500;
        let out = s
            .query(&format!(
                "SELECT COUNT(*) AS n, SUM(payload) AS s FROM t WHERE k >= {lo} AND k < {hi}"
            ))
            .unwrap();
        checksum += out.row(0)[0].as_int().unwrap();
    }
    assert_eq!(
        checksum,
        QUERIES as i64 * 500,
        "both layouts return identical results"
    );
    let c = stats.counts();
    (c.reads, c.bytes_read, engine.metrics_snapshot())
}

fn main() {
    polaris_bench::header(
        "Ablation §2.3",
        "range queries over Z-order-clustered vs unclustered layout (bytes read from storage)",
    );
    println!("{:>12} {:>10} {:>14}", "layout", "reads", "bytes_read");
    let (u_reads, u_bytes, _) = run(false);
    println!("{:>12} {:>10} {:>14}", "unclustered", u_reads, u_bytes);
    let (c_reads, c_bytes, clustered_metrics) = run(true);
    println!("{:>12} {:>10} {:>14}", "clustered", c_reads, c_bytes);
    println!();
    println!(
        "shape check: clustering cuts bytes read {:.1}x (tight per-file min/max \
         lets the scan prune files a range predicate cannot touch)",
        u_bytes as f64 / c_bytes as f64
    );
    dump_metrics_snapshot("ablation_zorder", &clustered_metrics);
}
