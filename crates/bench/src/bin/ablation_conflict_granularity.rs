//! Ablation (§4.4.1): write-write conflict detection at Table vs DataFile
//! granularity.
//!
//! Workload: pairs of concurrent transactions deleting *disjoint* key
//! ranges of the same table. At Table granularity the second committer of
//! every pair aborts (same WriteSets row); at DataFile granularity the
//! deletes usually touch different data files and both commit.

use polaris_bench::{bench_config, dump_metrics_snapshot, engine_with_topology, header};
use polaris_core::{ConflictGranularity, PolarisEngine};
use polaris_exec::Expr;
use polaris_obs::MetricsSnapshot;
use std::sync::Arc;

const PAIRS: usize = 24;
const ROWS: i64 = 4_096;

fn run(granularity: ConflictGranularity) -> (usize, usize, MetricsSnapshot) {
    let mut config = bench_config();
    config.conflict_granularity = granularity;
    // Many distributions -> many data files -> disjoint ranges land in
    // disjoint files most of the time.
    config.distributions = 32;
    config.auto_retries = 0;
    let engine: Arc<PolarisEngine> = engine_with_topology(4, 4, 2, config);
    let mut session = engine.session();
    session
        .execute("CREATE TABLE t (id BIGINT, v BIGINT)")
        .unwrap();
    let values: Vec<String> = (0..ROWS).map(|i| format!("({i}, {i})")).collect();
    session
        .execute(&format!("INSERT INTO t VALUES {}", values.join(",")))
        .unwrap();

    let mut commits = 0;
    let mut aborts = 0;
    for pair in 0..PAIRS {
        // Two disjoint single-row deletes, started concurrently.
        let k1 = (pair * 97) as i64 % ROWS;
        let k2 = (pair * 97 + 13) as i64 % ROWS;
        let mut t1 = engine.begin();
        let mut t2 = engine.begin();
        let p1 = Expr::col("id").eq(Expr::lit(k1));
        let p2 = Expr::col("id").eq(Expr::lit(k2));
        t1.delete("t", Some(&p1)).unwrap();
        t2.delete("t", Some(&p2)).unwrap();
        match t1.commit() {
            Ok(_) => commits += 1,
            Err(_) => aborts += 1,
        }
        match t2.commit() {
            Ok(_) => commits += 1,
            Err(e) => {
                assert!(e.is_retryable_conflict());
                aborts += 1;
            }
        }
    }
    (commits, aborts, engine.metrics_snapshot())
}

fn main() {
    header(
        "Ablation §4.4.1",
        "concurrent disjoint deletes: conflict granularity Table vs DataFile",
    );
    println!(
        "{:>12} {:>9} {:>8} {:>12}",
        "granularity", "commits", "aborts", "abort_rate"
    );
    let mut last_metrics = None;
    for (label, g) in [
        ("Table", ConflictGranularity::Table),
        ("DataFile", ConflictGranularity::DataFile),
    ] {
        let (commits, aborts, metrics) = run(g);
        last_metrics = Some(metrics);
        println!(
            "{:>12} {:>9} {:>8} {:>11.0}%",
            label,
            commits,
            aborts,
            100.0 * aborts as f64 / (commits + aborts) as f64
        );
    }
    println!();
    println!(
        "shape check: Table granularity aborts one of every concurrent pair (~50%); \
         DataFile granularity lets disjoint-file deletes commit (near 0%)"
    );
    if let Some(snapshot) = last_metrics {
        dump_metrics_snapshot("ablation_conflict_granularity", &snapshot);
    }
}
