//! Figure 10: autonomous data compaction discovering and correcting
//! storage-health issues caused by WP1 data maintenance.
//!
//! The paper shows a horizontal green/red bar per table: red after a DM
//! phase fragments files, turning green again within minutes once the STO
//! compacts them. This harness prints the same timeline: one row per
//! health sample, `GREEN`/`RED` per table, before and after each STO pass.

use polaris_bench::{bench_config, dump_metrics_snapshot, engine_with_topology, header};
use polaris_workloads::lstbench::{self, Wp1Event};
use polaris_workloads::tpcds;

const SF: f64 = 1.0;
const PHASES: usize = 4;

fn main() {
    header(
        "Figure 10",
        "storage health (green/red) across WP1 SU/DM phases with autonomous compaction",
    );
    let mut config = bench_config();
    config.compact_min_rows = 64;
    // DM deletes ~5% of each table per phase; a 4% fragmentation threshold
    // makes every DM phase trip the health monitor, as in the paper's run.
    config.compact_max_deleted = 0.04;
    let engine = engine_with_topology(6, 4, 2, config);
    lstbench::setup_tpcds(&engine, SF, 42).unwrap();

    let events = lstbench::run_wp1(&engine, PHASES, SF, 42).unwrap();

    let tables = tpcds::tables();
    println!("{:>6} {:>10}  {}", "phase", "moment", tables.join("  "));
    let mut row: Vec<&str> = vec!["?"; tables.len()];
    let mut current: Option<(usize, bool)> = None;
    let flush = |phase_moment: Option<(usize, bool)>, row: &mut Vec<&str>| {
        if let Some((phase, after)) = phase_moment {
            let moment = if after { "post-STO" } else { "post-DM" };
            println!("{:>6} {:>10}  {}", phase, moment, row.join("  "));
        }
        row.fill("?");
    };
    for event in &events {
        match event {
            Wp1Event::Health {
                phase,
                after_sto,
                health,
                ..
            } => {
                if current != Some((*phase, *after_sto)) {
                    flush(current, &mut row);
                    current = Some((*phase, *after_sto));
                }
                let idx = tables.iter().position(|t| *t == health.table).unwrap();
                // Pad to the table-name width so columns line up.
                row[idx] = if health.is_healthy() { "GREEN" } else { "RED" };
            }
            Wp1Event::Sto { phase, report } => {
                flush(current.take(), &mut row);
                println!(
                    "{:>6} {:>10}  sto: {} compactions, {} checkpoints, {} published, {} gc'd",
                    phase,
                    "sto-pass",
                    report.compactions,
                    report.checkpoints,
                    report.published,
                    report.gc_deleted
                );
            }
            Wp1Event::Su { phase, report } => {
                flush(current.take(), &mut row);
                println!(
                    "{:>6} {:>10}  su power run: {:.1} ms",
                    phase,
                    "su",
                    report.total.as_secs_f64() * 1e3
                );
            }
            Wp1Event::Dm { phase, report } => {
                flush(current.take(), &mut row);
                println!(
                    "{:>6} {:>10}  dm: +{} rows, -{} rows in {:.1} ms",
                    phase,
                    "dm",
                    report.inserted,
                    report.deleted,
                    report.duration.as_secs_f64() * 1e3
                );
            }
            Wp1Event::Checkpoint { .. } => {}
        }
    }
    flush(current, &mut row);
    println!();
    println!(
        "shape check: post-DM rows show RED (fragmentation); \
         post-STO rows return to GREEN (paper: tables back to green within minutes of the next SU phase)"
    );
    dump_metrics_snapshot("fig10_compaction", &engine.metrics_snapshot());
}
