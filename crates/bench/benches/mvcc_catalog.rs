//! Micro-benchmarks for the SQL-FE catalog: commit-protocol latency and
//! snapshot-read cost — the centralized validation path every Polaris
//! transaction funnels through (§4.1.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polaris_catalog::{Catalog, ConflictGranularity, IsolationLevel};
use polaris_lst::SequenceId;

fn catalog_with_history(commits: u64) -> (Catalog, polaris_catalog::TableId) {
    let c = Catalog::new();
    let mut tx = c.begin(IsolationLevel::Snapshot);
    let id = c.create_table(&mut tx, "t", "{}", "lake/t", &[]).unwrap();
    c.commit(&mut tx).unwrap();
    for i in 0..commits {
        let mut tx = c.begin(IsolationLevel::Snapshot);
        c.commit_write(&mut tx, &[(id, format!("m{i}"))]).unwrap();
    }
    (c, id)
}

fn bench_commit_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("catalog_commit");
    for granularity in [ConflictGranularity::Table, ConflictGranularity::DataFile] {
        let label = format!("{granularity:?}");
        let (catalog, id) = catalog_with_history(16);
        group.bench_function(BenchmarkId::new("write_commit", label), |b| {
            b.iter(|| {
                let mut tx = catalog.begin(IsolationLevel::Snapshot);
                catalog
                    .record_write_set(&mut tx, id, &["f1".to_owned()], granularity)
                    .unwrap();
                catalog
                    .commit_write(&mut tx, &[(id, "m".to_owned())])
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_snapshot_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("catalog_visible_manifests");
    for commits in [64u64, 1024] {
        let (catalog, id) = catalog_with_history(commits);
        group.bench_with_input(
            BenchmarkId::from_parameter(commits),
            &(catalog, id),
            |b, (catalog, id)| {
                b.iter(|| {
                    let mut tx = catalog.begin(IsolationLevel::Snapshot);
                    let rows = catalog.visible_manifests(&mut tx, *id).unwrap();
                    catalog.abort(&mut tx);
                    assert_eq!(rows.len() as u64, commits);
                    rows
                })
            },
        );
    }
    group.finish();
}

fn bench_incremental_fetch(c: &mut Criterion) {
    // The BE snapshot-cache fetch: only the manifests after the cached
    // base, regardless of total history length.
    let (catalog, id) = catalog_with_history(1024);
    c.bench_function("catalog_manifests_between_tail8", |b| {
        b.iter(|| {
            let mut tx = catalog.begin(IsolationLevel::Snapshot);
            let from = SequenceId(catalog.now().0 - 8);
            let rows = catalog
                .manifests_between(&mut tx, id, from, SequenceId(u64::MAX))
                .unwrap();
            catalog.abort(&mut tx);
            assert_eq!(rows.len(), 8);
            rows
        })
    });
}

criterion_group!(
    benches,
    bench_commit_protocol,
    bench_snapshot_read,
    bench_incremental_fetch
);
criterion_main!(benches);
