//! End-to-end engine latencies: insert-commit, point and aggregate
//! queries, and the optimistic commit protocol round trip.

use criterion::{criterion_group, criterion_main, Criterion};
use polaris_core::{DataType, EngineConfig, Field};
use polaris_core::{PolarisEngine, RecordBatch, Schema, Value};
use std::sync::Arc;

fn loaded_engine(rows: usize) -> Arc<PolarisEngine> {
    let engine = PolarisEngine::in_memory();
    let mut s = engine.session();
    s.execute("CREATE TABLE t (id BIGINT, grp VARCHAR, v FLOAT)")
        .unwrap();
    let schema = Schema::new(vec![
        Field::new("id", DataType::Int64),
        Field::new("grp", DataType::Utf8),
        Field::new("v", DataType::Float64),
    ]);
    let data: Vec<Vec<Value>> = (0..rows)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Str(format!("g{}", i % 10)),
                Value::Float(i as f64),
            ]
        })
        .collect();
    let batch = RecordBatch::from_rows(schema, &data).unwrap();
    s.insert_batch("t", &batch).unwrap();
    engine
}

fn bench_insert_commit(c: &mut Criterion) {
    let engine = loaded_engine(0);
    let schema = Schema::new(vec![
        Field::new("id", DataType::Int64),
        Field::new("grp", DataType::Utf8),
        Field::new("v", DataType::Float64),
    ]);
    let batch = RecordBatch::from_rows(
        schema,
        &(0..256)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Str("g".into()),
                    Value::Float(i as f64),
                ]
            })
            .collect::<Vec<_>>(),
    )
    .unwrap();
    c.bench_function("engine_insert256_commit", |b| {
        b.iter(|| {
            let mut txn = engine.begin();
            txn.insert("t", &batch).unwrap();
            txn.commit().unwrap()
        })
    });
}

fn bench_queries(c: &mut Criterion) {
    let engine = loaded_engine(20_000);
    let mut s = engine.session();
    // warm caches
    s.query("SELECT COUNT(*) AS n FROM t").unwrap();
    c.bench_function("engine_point_filter_20k", |b| {
        b.iter(|| s.query("SELECT id, v FROM t WHERE id = 19999").unwrap())
    });
    c.bench_function("engine_group_agg_20k", |b| {
        b.iter(|| {
            s.query("SELECT grp, SUM(v) AS s, AVG(v) AS a FROM t GROUP BY grp")
                .unwrap()
        })
    });
    c.bench_function("engine_topn_20k", |b| {
        b.iter(|| {
            s.query("SELECT id, v FROM t ORDER BY v DESC LIMIT 10")
                .unwrap()
        })
    });
}

fn bench_morsel_scan(c: &mut Criterion) {
    // Exactly 4 files × 8 row groups: distributions=4 makes one
    // 4096-row insert land as four 1024-row files, and the testing
    // config's 128-row groups cut each file into 8 groups. The query
    // projects 2 of 3 columns behind a selective predicate, so the
    // morsel pipeline's splitting, stealing, and late materialization
    // are all on the measured path.
    let config = EngineConfig {
        distributions: 4,
        ..EngineConfig::for_testing()
    };
    let engine = polaris_bench::engine_with_topology(4, 2, 2, config);
    let mut s = engine.session();
    s.execute("CREATE TABLE t (id BIGINT, grp VARCHAR, v FLOAT)")
        .unwrap();
    let schema = Schema::new(vec![
        Field::new("id", DataType::Int64),
        Field::new("grp", DataType::Utf8),
        Field::new("v", DataType::Float64),
    ]);
    let data: Vec<Vec<Value>> = (0..4096)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Str(format!("g{}", i % 10)),
                Value::Float(i as f64),
            ]
        })
        .collect();
    let batch = RecordBatch::from_rows(schema, &data).unwrap();
    s.insert_batch("t", &batch).unwrap();
    s.query("SELECT COUNT(*) AS n FROM t").unwrap(); // warm caches
    c.bench_function("scan_morsel_4files_8groups", |b| {
        b.iter(|| s.query("SELECT id, v FROM t WHERE id >= 3584").unwrap())
    });
    // Diffable run-to-run artifact: store traffic, morsel counters, task
    // counts for this bench's engine.
    polaris_bench::dump_metrics_snapshot("scan_morsel_4files_8groups", &engine.metrics_snapshot());
}

fn bench_readonly_txn(c: &mut Criterion) {
    let engine = loaded_engine(1_000);
    c.bench_function("engine_readonly_txn_roundtrip", |b| {
        b.iter(|| {
            let mut txn = engine.begin();
            txn.query("SELECT COUNT(*) AS n FROM t").unwrap();
            txn.commit().unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_insert_commit,
    bench_queries,
    bench_morsel_scan,
    bench_readonly_txn
);
criterion_main!(benches);
