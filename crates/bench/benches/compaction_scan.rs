//! Ablation E10 (§5.1): scan cost over fragmented vs compacted storage.
//!
//! Trickle inserts and deletes leave many small files with delete vectors;
//! merge-on-read then pays per-file overhead and DV masking on every scan.
//! Compaction rewrites the survivors into full files. The gap between the
//! two bars is what the STO's compaction trigger buys.

use criterion::{criterion_group, criterion_main, Criterion};
use polaris_core::{sto, PolarisEngine, Value};
use std::sync::Arc;

/// Build a fragmented table: 32 trickle inserts + 4 delete waves.
fn fragmented_engine() -> Arc<PolarisEngine> {
    let engine = PolarisEngine::in_memory();
    let mut s = engine.session();
    s.execute("CREATE TABLE t (id BIGINT, v BIGINT)").unwrap();
    for wave in 0..32 {
        let rows: Vec<String> = (0..64)
            .map(|i| format!("({}, {})", wave * 64 + i, i))
            .collect();
        s.execute(&format!("INSERT INTO t VALUES {}", rows.join(",")))
            .unwrap();
    }
    for wave in 0..4 {
        s.execute(&format!(
            "DELETE FROM t WHERE id >= {} AND id < {}",
            wave * 500,
            wave * 500 + 100
        ))
        .unwrap();
    }
    engine
}

fn scan_sum(engine: &Arc<PolarisEngine>) -> i64 {
    let mut s = engine.session();
    let out = s.query("SELECT SUM(v) AS s, COUNT(*) AS n FROM t").unwrap();
    out.row(0)[0].as_int().unwrap()
}

fn bench_scan(c: &mut Criterion) {
    let fragmented = fragmented_engine();
    let expected = scan_sum(&fragmented);

    let compacted = fragmented_engine();
    // Compact until healthy (compaction is incremental per trigger).
    while sto::compact_table(&compacted, "t").unwrap().is_some() {}
    assert_eq!(
        scan_sum(&compacted),
        expected,
        "compaction must preserve results"
    );

    let mut group = c.benchmark_group("scan_after_maintenance");
    group.bench_function("fragmented", |b| {
        b.iter(|| {
            let got = scan_sum(std::hint::black_box(&fragmented));
            assert_eq!(got, expected);
        })
    });
    group.bench_function("compacted", |b| {
        b.iter(|| {
            let got = scan_sum(std::hint::black_box(&compacted));
            assert_eq!(got, expected);
        })
    });
    group.finish();

    // Also report the file-count difference the bars come from.
    let frag_health = sto::table_health(&fragmented, "t").unwrap();
    let comp_health = sto::table_health(&compacted, "t").unwrap();
    println!(
        "fragmented: {} files ({} small, {} fragmented); compacted: {} files",
        frag_health.file_count,
        frag_health.small_files,
        frag_health.fragmented_files,
        comp_health.file_count,
    );
    let _ = Value::Int(0);
}

criterion_group!(benches, bench_scan);
criterion_main!(benches);
