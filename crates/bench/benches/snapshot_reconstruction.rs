//! Ablation E9 (§5.2): snapshot reconstruction cost with and without
//! checkpoints.
//!
//! The log-structured design makes reconstruction O(manifests since table
//! creation); checkpoints cut it to O(manifests since checkpoint). This
//! bench replays chains of increasing length both ways — the gap is the
//! entire justification for the STO's checkpointing task.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polaris_lst::{Checkpoint, Manifest, ManifestAction, SequenceId, TableSnapshot};

/// A realistic manifest chain: every commit adds a file, and compaction
/// churn removes older ones so the LIVE state stays bounded (~16 files)
/// while the chain keeps growing. This is the §5.2 asymmetry: a
/// checkpoint's size tracks live state; replay cost tracks chain length.
fn chain(len: usize) -> Vec<(SequenceId, Manifest)> {
    const LIVE_WINDOW: usize = 16;
    (1..=len)
        .map(|i| {
            let mut actions = vec![ManifestAction::add_file(
                format!("t/f{i}"),
                1_000,
                100_000,
                (i % 8) as u32,
            )];
            if i > LIVE_WINDOW {
                actions.push(ManifestAction::remove_file(format!(
                    "t/f{}",
                    i - LIVE_WINDOW
                )));
            }
            if i % 3 == 0 && i > 1 {
                actions.push(ManifestAction::add_dv(
                    format!("t/f{}", i - 1),
                    format!("t/f{}.dv{i}", i - 1),
                    10,
                ));
            }
            (SequenceId(i as u64), Manifest::from_actions(actions))
        })
        .collect()
}

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_reconstruction");
    for manifests in [32usize, 128, 512] {
        let full = chain(manifests);
        // Checkpoint covering all but the last 8 manifests — the steady
        // state the STO maintains.
        let covered = manifests - 8;
        let base =
            TableSnapshot::from_manifests(full[..covered].iter().map(|(s, m)| (*s, m))).unwrap();
        let ckpt = Checkpoint::from_snapshot(&base);
        let ckpt_bytes = ckpt.encode();
        let tail: Vec<(SequenceId, Manifest)> = full[covered..].to_vec();

        group.bench_with_input(
            BenchmarkId::new("full_replay", manifests),
            &full,
            |bencher, full| {
                bencher.iter(|| {
                    TableSnapshot::from_manifests(full.iter().map(|(s, m)| (*s, m))).unwrap()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("checkpoint_plus_tail", manifests),
            &(ckpt_bytes, tail),
            |bencher, (ckpt_bytes, tail)| {
                bencher.iter(|| {
                    let mut snap = Checkpoint::decode(std::hint::black_box(ckpt_bytes))
                        .unwrap()
                        .to_snapshot();
                    for (seq, m) in tail {
                        snap.apply_manifest(*seq, m).unwrap();
                    }
                    snap
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
