//! Micro-benchmarks for the columnar file format: encode/decode
//! throughput and the encoding heuristics (dictionary, RLE, delta).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use polaris_columnar::{
    ColumnarFile, ColumnarWriter, DataType, Field, RecordBatch, Schema, Value, WriterOptions,
};

fn batch(rows: usize) -> RecordBatch {
    let schema = Schema::new(vec![
        Field::new("id", DataType::Int64),
        Field::new("price", DataType::Float64),
        Field::new("flag", DataType::Utf8),
        Field::new("active", DataType::Bool),
    ]);
    let data: Vec<Vec<Value>> = (0..rows)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Float(i as f64 * 1.25),
                Value::Str(format!("cat-{}", i % 8)), // low cardinality -> dict
                Value::Bool(i % 3 == 0),
            ]
        })
        .collect();
    RecordBatch::from_rows(schema, &data).unwrap()
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("columnar_encode");
    for rows in [1_000usize, 10_000] {
        let b = batch(rows);
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rows), &b, |bencher, b| {
            bencher.iter(|| {
                ColumnarWriter::encode_file(std::hint::black_box(b), WriterOptions::default())
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("columnar_decode");
    for rows in [1_000usize, 10_000] {
        let bytes = ColumnarWriter::encode_file(&batch(rows), WriterOptions::default()).unwrap();
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(rows),
            &bytes,
            |bencher, bytes| {
                bencher.iter(|| {
                    let file = ColumnarFile::parse(std::hint::black_box(bytes.clone())).unwrap();
                    file.read_all().unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_footer_only_parse(c: &mut Criterion) {
    // Stats-based pruning never decodes chunk payloads: parsing the footer
    // must stay cheap regardless of data volume.
    let bytes = ColumnarWriter::encode_file(&batch(50_000), WriterOptions::default()).unwrap();
    c.bench_function("columnar_footer_parse_50k_rows", |bencher| {
        bencher.iter(|| ColumnarFile::parse(std::hint::black_box(bytes.clone())).unwrap());
    });
}

criterion_group!(benches, bench_encode, bench_decode, bench_footer_only_parse);
criterion_main!(benches);
