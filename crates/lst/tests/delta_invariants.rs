//! Property test for the central reconciliation invariant of §3.2.3:
//! for ANY sequence of valid statement actions, replaying the reconciled
//! transaction manifest onto the committed base produces exactly the
//! overlay view the transaction saw — and never references files that
//! were created and obsoleted within the transaction.

use polaris_lst::{Manifest, ManifestAction, SequenceId, TableSnapshot, TxnDelta};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn base_snapshot(files: usize, with_dvs: bool) -> TableSnapshot {
    let mut actions = Vec::new();
    for i in 0..files {
        actions.push(ManifestAction::add_file(
            format!("t/base{i}"),
            100,
            1000,
            i as u32,
        ));
        if with_dvs && i % 2 == 0 {
            actions.push(ManifestAction::add_dv(
                format!("t/base{i}"),
                format!("t/base{i}.dv0"),
                5,
            ));
        }
    }
    TableSnapshot::from_manifests([(SequenceId(1), &Manifest::from_actions(actions))]).unwrap()
}

/// Generate one random VALID action against the current overlay state,
/// mimicking what statements emit: inserts add files; deletes replace the
/// current DV (remove-then-add when one exists); whole-file deletes remove.
fn random_action(
    rng: &mut StdRng,
    overlay: &TableSnapshot,
    fresh: &mut usize,
) -> Vec<ManifestAction> {
    let live: Vec<_> = overlay.files().cloned().collect();
    match rng.gen_range(0..4) {
        // insert a new file
        0 => {
            *fresh += 1;
            vec![ManifestAction::add_file(
                format!("t/new{fresh}"),
                50,
                500,
                rng.gen_range(0..4),
            )]
        }
        // delete some rows of a live file: RemoveDv(old)? + AddDv(new)
        1 if !live.is_empty() => {
            let f = &live[rng.gen_range(0..live.len())];
            *fresh += 1;
            let mut out = Vec::new();
            if let Some(dv) = &f.delete_vector {
                out.push(ManifestAction::remove_dv(
                    f.entry.path.clone(),
                    dv.path.clone(),
                ));
            }
            let old_card = f.delete_vector.as_ref().map_or(0, |d| d.cardinality);
            out.push(ManifestAction::add_dv(
                f.entry.path.clone(),
                format!("t/dv{fresh}"),
                (old_card + rng.gen_range(1..10)).min(f.entry.rows),
            ));
            out
        }
        // remove a whole live file
        2 if !live.is_empty() => {
            let f = &live[rng.gen_range(0..live.len())];
            vec![ManifestAction::remove_file(f.entry.path.clone())]
        }
        _ => {
            *fresh += 1;
            vec![ManifestAction::add_file(
                format!("t/new{fresh}"),
                10,
                100,
                rng.gen_range(0..4),
            )]
        }
    }
}

proptest! {
    #[test]
    fn reconciled_manifest_equals_overlay(
        seed in any::<u64>(),
        steps in 1usize..30,
        base_files in 0usize..6,
        with_dvs in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = base_snapshot(base_files, with_dvs);
        let mut delta = TxnDelta::new();
        let mut fresh = 0usize;
        for _ in 0..steps {
            let overlay = delta.overlay(&base);
            for action in random_action(&mut rng, &overlay, &mut fresh) {
                delta.apply(&base, &action).unwrap();
            }
        }
        // Invariant 1: replaying the reconciled manifest onto the base
        // reproduces the overlay exactly.
        let manifest = Manifest::from_actions(delta.to_actions());
        let mut committed = base.clone();
        committed.apply_manifest(SequenceId(2), &manifest).unwrap();
        let overlay = delta.overlay(&base);
        let committed_files: Vec<_> = committed.files().cloned().collect();
        let mut overlay_files: Vec<_> = overlay.files().cloned().collect();
        // `added_at` differs (overlay marks additions at base.upto+1);
        // normalize before comparing.
        for f in overlay_files.iter_mut() {
            if let Some(c) = committed_files.iter().find(|c| c.entry.path == f.entry.path) {
                f.added_at = c.added_at;
            }
        }
        prop_assert_eq!(committed_files, overlay_files);
        prop_assert_eq!(committed.live_rows(), overlay.live_rows());

        // Invariant 2: the committed manifest never mentions files that
        // were created AND obsoleted within the transaction. Every AddFile
        // path must be live in the final overlay.
        for action in &manifest.actions {
            if let ManifestAction::AddFile(e) = action {
                prop_assert!(
                    overlay.file(&e.path).is_some(),
                    "manifest adds {} which the txn already obsoleted",
                    e.path
                );
            }
        }

        // Invariant 3: modified_base_files ⊆ base files, and every removed
        // or re-DV'd base file is reported (conflict-detection soundness).
        for path in delta.modified_base_files() {
            prop_assert!(base.file(path).is_some());
        }
        for f in base.files() {
            let path = &f.entry.path;
            let changed = match overlay.file(path) {
                None => true, // removed
                Some(o) => o.delete_vector != f.delete_vector,
            };
            if changed {
                prop_assert!(
                    delta.modified_base_files().any(|p| p == path),
                    "base file {path} changed but is missing from the write set"
                );
            }
        }
    }
}
