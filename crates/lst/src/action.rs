//! Manifest actions: the log-entry vocabulary of log-structured tables.

use serde::{Deserialize, Serialize};

/// A scalar bound carried in manifest statistics — a serializable mirror
/// of the engine's `Value` restricted to orderable types.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum RangeVal {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Days since epoch.
    Date(i32),
}

impl RangeVal {
    /// Convert from an engine scalar; `None` for NULL (no bound).
    pub fn from_value(v: &polaris_columnar::Value) -> Option<RangeVal> {
        use polaris_columnar::Value;
        Some(match v {
            Value::Null => return None,
            Value::Int(x) => RangeVal::Int(*x),
            Value::Float(x) => RangeVal::Float(*x),
            Value::Str(x) => RangeVal::Str(x.clone()),
            Value::Bool(x) => RangeVal::Bool(*x),
            Value::Date(x) => RangeVal::Date(*x),
        })
    }

    /// Convert back to an engine scalar.
    pub fn to_value(&self) -> polaris_columnar::Value {
        use polaris_columnar::Value;
        match self {
            RangeVal::Int(x) => Value::Int(*x),
            RangeVal::Float(x) => Value::Float(*x),
            RangeVal::Str(x) => Value::Str(x.clone()),
            RangeVal::Bool(x) => Value::Bool(*x),
            RangeVal::Date(x) => Value::Date(*x),
        }
    }
}

/// Per-column min/max carried in the manifest (the Delta-Lake-style
/// file statistics): lets the FE/BE prune files against predicates
/// *without fetching them* — metadata-only pruning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColRange {
    /// Column name.
    pub column: String,
    /// Minimum non-null value in the file.
    pub min: RangeVal,
    /// Maximum non-null value in the file.
    pub max: RangeVal,
}

/// Metadata for a data file referenced by a manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataFileEntry {
    /// Blob path of the columnar data file.
    pub path: String,
    /// Row count (before delete-vector masking).
    pub rows: u64,
    /// File size in bytes.
    pub bytes: u64,
    /// Distribution bucket the file's cells belong to (§2.3's `d(r)`).
    pub distribution: u32,
    /// Optional per-column ranges for metadata-only pruning. Columns with
    /// only NULLs (or non-orderable stats) are simply absent.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub col_ranges: Vec<ColRange>,
}

/// Metadata for a delete-vector file attached to a data file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DvEntry {
    /// Blob path of the delete-vector file.
    pub path: String,
    /// Number of rows the vector marks deleted.
    pub cardinality: u64,
}

/// One log entry in a manifest file.
///
/// The four-action vocabulary matches the paper's §4.2 example: inserts
/// `Add` data files; deletes `Add` a delete vector (and, when one already
/// existed for the target file, `RemoveDv` the old one and `Add` the merged
/// version); compaction `Remove`s rewritten data files and `Add`s their
/// replacements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "action", rename_all = "snake_case")]
pub enum ManifestAction {
    /// A new immutable data file joined the table.
    AddFile(DataFileEntry),
    /// A data file was logically removed (rewritten or fully deleted). The
    /// physical blob remains until garbage collection (§5.3).
    RemoveFile {
        /// Path of the removed data file.
        path: String,
    },
    /// A delete vector now masks rows of `data_file`.
    AddDv {
        /// Path of the data file the vector applies to.
        data_file: String,
        /// The delete-vector file.
        dv: DvEntry,
    },
    /// A previous delete vector of `data_file` was superseded.
    RemoveDv {
        /// Path of the data file the vector applied to.
        data_file: String,
        /// Path of the superseded delete-vector file.
        dv_path: String,
    },
}

impl ManifestAction {
    /// Convenience constructor for [`ManifestAction::AddFile`].
    pub fn add_file(path: impl Into<String>, rows: u64, bytes: u64, distribution: u32) -> Self {
        ManifestAction::AddFile(DataFileEntry {
            path: path.into(),
            rows,
            bytes,
            distribution,
            col_ranges: Vec::new(),
        })
    }

    /// Convenience constructor for [`ManifestAction::RemoveFile`].
    pub fn remove_file(path: impl Into<String>) -> Self {
        ManifestAction::RemoveFile { path: path.into() }
    }

    /// Convenience constructor for [`ManifestAction::AddDv`].
    pub fn add_dv(
        data_file: impl Into<String>,
        dv_path: impl Into<String>,
        cardinality: u64,
    ) -> Self {
        ManifestAction::AddDv {
            data_file: data_file.into(),
            dv: DvEntry {
                path: dv_path.into(),
                cardinality,
            },
        }
    }

    /// Convenience constructor for [`ManifestAction::RemoveDv`].
    pub fn remove_dv(data_file: impl Into<String>, dv_path: impl Into<String>) -> Self {
        ManifestAction::RemoveDv {
            data_file: data_file.into(),
            dv_path: dv_path.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip_all_variants() {
        let actions = vec![
            ManifestAction::add_file("t/data/f1.pcf", 100, 2048, 3),
            ManifestAction::remove_file("t/data/f0.pcf"),
            ManifestAction::add_dv("t/data/f1.pcf", "t/dv/f1.dv", 7),
            ManifestAction::remove_dv("t/data/f1.pcf", "t/dv/old.dv"),
        ];
        for a in actions {
            let json = serde_json::to_string(&a).unwrap();
            let back: ManifestAction = serde_json::from_str(&json).unwrap();
            assert_eq!(back, a);
        }
    }

    #[test]
    fn json_shape_is_tagged() {
        let a = ManifestAction::add_file("f", 1, 2, 0);
        let json = serde_json::to_string(&a).unwrap();
        assert!(json.contains("\"action\":\"add_file\""), "{json}");
    }
}
