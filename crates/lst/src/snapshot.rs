//! Table snapshots: the reconstructed state of an LST as of a commit.

use crate::{DataFileEntry, DvEntry, LstError, LstResult, Manifest, ManifestAction, SequenceId};
use std::collections::BTreeMap;

/// State of one live data file within a snapshot.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DataFileState {
    /// File metadata as recorded at add time.
    pub entry: DataFileEntry,
    /// Current delete vector, if any rows are deleted.
    pub delete_vector: Option<DvEntry>,
    /// Sequence of the transaction that added the file.
    pub added_at: SequenceId,
}

impl DataFileState {
    /// Rows still visible after delete-vector masking.
    pub fn live_rows(&self) -> u64 {
        let deleted = self.delete_vector.as_ref().map_or(0, |dv| dv.cardinality);
        self.entry.rows.saturating_sub(deleted)
    }

    /// Fraction of the file's rows that are deleted (0.0 for no DV).
    pub fn deleted_fraction(&self) -> f64 {
        if self.entry.rows == 0 {
            return 0.0;
        }
        let deleted = self.delete_vector.as_ref().map_or(0, |dv| dv.cardinality);
        deleted as f64 / self.entry.rows as f64
    }
}

/// The reconstructed state of a table as of a sequence number: the set of
/// live data files and their delete vectors (§3.2.1).
///
/// Built by replaying manifests (optionally on top of a checkpoint) in
/// sequence order; supports incremental extension, which is what the
/// BE-side [`SnapshotCache`](crate::SnapshotCache) exploits.
///
/// ```
/// use polaris_lst::{Manifest, ManifestAction, SequenceId, TableSnapshot};
///
/// let load = Manifest::from_actions(vec![ManifestAction::add_file("t/f1", 100, 4096, 0)]);
/// let delete = Manifest::from_actions(vec![ManifestAction::add_dv("t/f1", "t/f1.dv", 10)]);
/// let snap = TableSnapshot::from_manifests([
///     (SequenceId(1), &load),
///     (SequenceId(2), &delete),
/// ])
/// .unwrap();
/// assert_eq!(snap.live_rows(), 90);
/// ```
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct TableSnapshot {
    files: BTreeMap<String, DataFileState>,
    /// Highest sequence replayed into this snapshot.
    upto: SequenceId,
}

impl TableSnapshot {
    /// An empty snapshot (table before any commit).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Replay a chain of `(sequence, manifest)` pairs, in order.
    pub fn from_manifests<'a>(
        manifests: impl IntoIterator<Item = (SequenceId, &'a Manifest)>,
    ) -> LstResult<Self> {
        let mut snap = Self::empty();
        for (seq, m) in manifests {
            snap.apply_manifest(seq, m)?;
        }
        Ok(snap)
    }

    /// Apply one committed manifest. `seq` must be greater than everything
    /// already applied (commit order).
    pub fn apply_manifest(&mut self, seq: SequenceId, manifest: &Manifest) -> LstResult<()> {
        if seq <= self.upto && self.upto != SequenceId(0) {
            return Err(LstError::invalid_replay(format!(
                "manifest {seq} applied after {}",
                self.upto
            )));
        }
        for action in &manifest.actions {
            self.apply_action(seq, action)?;
        }
        self.upto = seq;
        Ok(())
    }

    fn apply_action(&mut self, seq: SequenceId, action: &ManifestAction) -> LstResult<()> {
        match action {
            ManifestAction::AddFile(entry) => {
                if self.files.contains_key(&entry.path) {
                    return Err(LstError::invalid_replay(format!(
                        "duplicate add of {}",
                        entry.path
                    )));
                }
                self.files.insert(
                    entry.path.clone(),
                    DataFileState {
                        entry: entry.clone(),
                        delete_vector: None,
                        added_at: seq,
                    },
                );
            }
            ManifestAction::RemoveFile { path } => {
                if self.files.remove(path).is_none() {
                    return Err(LstError::invalid_replay(format!(
                        "remove of non-live file {path}"
                    )));
                }
            }
            ManifestAction::AddDv { data_file, dv } => {
                let state = self.files.get_mut(data_file).ok_or_else(|| {
                    LstError::invalid_replay(format!("delete vector for non-live file {data_file}"))
                })?;
                state.delete_vector = Some(dv.clone());
            }
            ManifestAction::RemoveDv { data_file, dv_path } => {
                let state = self.files.get_mut(data_file).ok_or_else(|| {
                    LstError::invalid_replay(format!("dv removal for non-live file {data_file}"))
                })?;
                match &state.delete_vector {
                    Some(dv) if &dv.path == dv_path => state.delete_vector = None,
                    _ => {
                        return Err(LstError::invalid_replay(format!(
                            "dv removal of {dv_path} which is not current for {data_file}"
                        )))
                    }
                }
            }
        }
        Ok(())
    }

    /// Highest sequence replayed into this snapshot.
    pub fn upto(&self) -> SequenceId {
        self.upto
    }

    /// Force the sequence watermark (used when restoring from checkpoints).
    pub fn set_upto(&mut self, seq: SequenceId) {
        self.upto = seq;
    }

    /// Live data files, ordered by path.
    pub fn files(&self) -> impl Iterator<Item = &DataFileState> {
        self.files.values()
    }

    /// Look up one file's state.
    pub fn file(&self, path: &str) -> Option<&DataFileState> {
        self.files.get(path)
    }

    /// Number of live data files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Total live rows (after delete-vector masking).
    pub fn live_rows(&self) -> u64 {
        self.files.values().map(DataFileState::live_rows).sum()
    }

    /// Total physical rows (before masking).
    pub fn total_rows(&self) -> u64 {
        self.files.values().map(|f| f.entry.rows).sum()
    }

    /// Total bytes across live data files.
    pub fn total_bytes(&self) -> u64 {
        self.files.values().map(|f| f.entry.bytes).sum()
    }

    /// Emit the minimal action list that recreates this snapshot from
    /// empty — the payload of a checkpoint (§5.2).
    pub fn to_actions(&self) -> Vec<ManifestAction> {
        let mut actions = Vec::with_capacity(self.files.len() * 2);
        for state in self.files.values() {
            actions.push(ManifestAction::AddFile(state.entry.clone()));
            if let Some(dv) = &state.delete_vector {
                actions.push(ManifestAction::AddDv {
                    data_file: state.entry.path.clone(),
                    dv: dv.clone(),
                });
            }
        }
        actions
    }

    /// Internal: insert a file state directly (checkpoint restore path).
    pub(crate) fn insert_state(&mut self, state: DataFileState) {
        self.files.insert(state.entry.path.clone(), state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add(path: &str, rows: u64) -> ManifestAction {
        ManifestAction::add_file(path, rows, rows * 10, 0)
    }

    #[test]
    fn replay_example_from_paper_section_4_2() {
        // X1 loads 3 rows -> file1; X2 inserts 2 rows (file2) and deletes one
        // row of file1 (dv). Mirrors Figure 6.
        let x1 = Manifest::from_actions(vec![add("t/file1", 3)]);
        let x2 = Manifest::from_actions(vec![
            add("t/file2", 2),
            ManifestAction::add_dv("t/file1", "t/1DV", 1),
        ]);
        let snap =
            TableSnapshot::from_manifests([(SequenceId(1), &x1), (SequenceId(2), &x2)]).unwrap();
        assert_eq!(snap.file_count(), 2);
        assert_eq!(snap.total_rows(), 5);
        assert_eq!(snap.live_rows(), 4);
        assert_eq!(snap.upto(), SequenceId(2));
        assert_eq!(snap.file("t/file1").unwrap().live_rows(), 2);
    }

    #[test]
    fn dv_replacement_via_remove_add() {
        // Deleting more rows of a file with an existing DV: Remove old DV,
        // Add merged DV (§4.2).
        let m1 = Manifest::from_actions(vec![
            add("t/f", 10),
            ManifestAction::add_dv("t/f", "t/f.dv1", 2),
        ]);
        let m2 = Manifest::from_actions(vec![
            ManifestAction::remove_dv("t/f", "t/f.dv1"),
            ManifestAction::add_dv("t/f", "t/f.dv2", 5),
        ]);
        let snap =
            TableSnapshot::from_manifests([(SequenceId(1), &m1), (SequenceId(2), &m2)]).unwrap();
        let f = snap.file("t/f").unwrap();
        assert_eq!(f.delete_vector.as_ref().unwrap().path, "t/f.dv2");
        assert_eq!(f.live_rows(), 5);
        assert_eq!(f.deleted_fraction(), 0.5);
    }

    #[test]
    fn compaction_remove_then_add() {
        let m1 = Manifest::from_actions(vec![add("t/small1", 5), add("t/small2", 5)]);
        let m2 = Manifest::from_actions(vec![
            ManifestAction::remove_file("t/small1"),
            ManifestAction::remove_file("t/small2"),
            add("t/compacted", 10),
        ]);
        let snap =
            TableSnapshot::from_manifests([(SequenceId(1), &m1), (SequenceId(2), &m2)]).unwrap();
        assert_eq!(snap.file_count(), 1);
        assert_eq!(snap.live_rows(), 10);
        assert_eq!(snap.file("t/compacted").unwrap().added_at, SequenceId(2));
    }

    #[test]
    fn invalid_replays_rejected() {
        let mut snap = TableSnapshot::empty();
        // remove before add
        let bad = Manifest::from_actions(vec![ManifestAction::remove_file("t/x")]);
        assert!(snap.apply_manifest(SequenceId(1), &bad).is_err());
        // duplicate add
        let m = Manifest::from_actions(vec![add("t/x", 1)]);
        snap.apply_manifest(SequenceId(1), &m).unwrap();
        let dup = Manifest::from_actions(vec![add("t/x", 1)]);
        assert!(snap.apply_manifest(SequenceId(2), &dup).is_err());
        // dv for unknown file
        let dv = Manifest::from_actions(vec![ManifestAction::add_dv("t/ghost", "g.dv", 1)]);
        assert!(snap.apply_manifest(SequenceId(3), &dv).is_err());
        // wrong dv removal
        let wrongdv = Manifest::from_actions(vec![ManifestAction::remove_dv("t/x", "nope.dv")]);
        assert!(snap.apply_manifest(SequenceId(3), &wrongdv).is_err());
        // out-of-order sequence
        let m2 = Manifest::from_actions(vec![add("t/y", 1)]);
        snap.apply_manifest(SequenceId(5), &m2).unwrap();
        let stale = Manifest::from_actions(vec![add("t/z", 1)]);
        assert!(snap.apply_manifest(SequenceId(4), &stale).is_err());
    }

    #[test]
    fn to_actions_round_trips_state() {
        let m1 = Manifest::from_actions(vec![
            add("t/a", 4),
            add("t/b", 6),
            ManifestAction::add_dv("t/b", "t/b.dv", 2),
        ]);
        let snap = TableSnapshot::from_manifests([(SequenceId(3), &m1)]).unwrap();
        let rebuilt = TableSnapshot::from_manifests([(
            SequenceId(3),
            &Manifest::from_actions(snap.to_actions()),
        )])
        .unwrap();
        assert_eq!(rebuilt.live_rows(), snap.live_rows());
        assert_eq!(rebuilt.file_count(), snap.file_count());
        assert_eq!(
            rebuilt.file("t/b").unwrap().delete_vector,
            snap.file("t/b").unwrap().delete_vector
        );
    }

    #[test]
    fn empty_file_deleted_fraction_is_zero() {
        let m = Manifest::from_actions(vec![add("t/empty", 0)]);
        let snap = TableSnapshot::from_manifests([(SequenceId(1), &m)]).unwrap();
        assert_eq!(snap.file("t/empty").unwrap().deleted_fraction(), 0.0);
    }
}
