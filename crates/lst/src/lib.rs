//! # polaris-lst
//!
//! Log-structured table (LST) layer: the *physical metadata* of Polaris
//! (§2.2, §3.2).
//!
//! A table's state is captured by a chain of immutable **manifest files**,
//! one per committed write transaction, each recording the data files and
//! delete vectors the transaction added or removed. Replaying the chain
//! (optionally starting from a **checkpoint**) reconstructs the table
//! snapshot as of any commit — which is what gives Polaris time travel,
//! cloning and cheap restore (§6).
//!
//! Contents:
//!
//! * [`ManifestAction`] / [`Manifest`] — the log-entry format. Manifests are
//!   serialized as JSON lines so that independently written *blocks*
//!   (one per BE task, §3.2.2) concatenate into a valid manifest — the
//!   property the Block Blob commit protocol depends on.
//! * [`TableSnapshot`] — reconstructed state: live data files plus their
//!   delete vectors.
//! * [`TxnDelta`] — a transaction's private, uncommitted changes, overlaid
//!   on the committed snapshot for multi-statement visibility (§3.2.3) and
//!   *reconciled* when later statements obsolete earlier ones.
//! * [`Checkpoint`] — compacted full-state file (§5.2).
//! * [`SnapshotCache`] — incremental snapshot reconstruction cache (§3.2.1).
//! * [`publish`] — async "lake" snapshot export in the Delta format (§5.4).
//! * [`orphan`] — recovery-time sweep of transaction manifests left behind
//!   by crashed commits (uploaded but never referenced by a `Manifests`
//!   row).

mod action;
mod cache;
mod checkpoint;
mod delta;
mod error;
mod manifest;
pub mod orphan;
pub mod publish;
mod snapshot;

pub use action::{ColRange, DataFileEntry, DvEntry, ManifestAction, RangeVal};
pub use cache::SnapshotCache;
pub use checkpoint::Checkpoint;
pub use delta::TxnDelta;
pub use error::{LstError, LstResult};
pub use manifest::Manifest;
pub use orphan::{collect_orphan_manifests, find_orphan_manifests};
pub use snapshot::{DataFileState, TableSnapshot};

/// Monotone commit sequence number of a table's manifest chain.
///
/// Assigned by the SQL FE at commit (the `Sequence Id` column of the
/// `Manifests` catalog table, §3.1); defines the logical commit order that
/// snapshots, time travel and checkpoints are all expressed in.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct SequenceId(pub u64);

impl SequenceId {
    /// The next sequence number.
    pub fn next(self) -> SequenceId {
        SequenceId(self.0 + 1)
    }
}

impl std::fmt::Display for SequenceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seq#{}", self.0)
    }
}
