//! Transaction deltas: a transaction's private, reconciled view of its own
//! uncommitted changes (§3.2.3).

use crate::{
    DataFileEntry, DataFileState, DvEntry, LstError, LstResult, ManifestAction, TableSnapshot,
};
use std::collections::{BTreeMap, BTreeSet};

/// The uncommitted changes of one transaction against one table, expressed
/// relative to the committed snapshot the transaction started from.
///
/// This is the in-memory form of the *transaction manifest*: statements
/// append actions via [`apply`](TxnDelta::apply); the reconciled action
/// list emitted by [`to_actions`](TxnDelta::to_actions) is what the SQL FE
/// flushes to the manifest blob. Reconciliation guarantees the paper's
/// requirement that "the final transaction manifest should not contain any
/// information about the parts from the first update that were made
/// obsolete by the second update": adding and later removing a file inside
/// the same transaction leaves no trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TxnDelta {
    /// Files added by this transaction, with their current DV (a txn can
    /// delete rows from a file it just wrote).
    added: BTreeMap<String, (DataFileEntry, Option<DvEntry>)>,
    /// Base-snapshot files this transaction removed.
    removed_base: BTreeSet<String>,
    /// Base-snapshot files whose DV this transaction replaced:
    /// `data_file -> (old dv path if the base had one, new dv)`.
    dv_on_base: BTreeMap<String, (Option<String>, DvEntry)>,
    /// Base-snapshot files whose committed DV this transaction removed
    /// without (yet) replacing: `data_file -> old dv path`. Usually a
    /// transient state between the RemoveDv and AddDv of a delete
    /// statement.
    dv_removed_base: BTreeMap<String, String>,
}

impl TxnDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Has the transaction made any changes to this table?
    pub fn is_empty(&self) -> bool {
        self.added.is_empty()
            && self.removed_base.is_empty()
            && self.dv_on_base.is_empty()
            && self.dv_removed_base.is_empty()
    }

    /// Apply one action produced by a statement of this transaction.
    ///
    /// `base` is the committed snapshot the transaction reads from; it is
    /// needed to distinguish "remove a file I added" (erase it from the
    /// delta) from "remove a committed file" (record a removal).
    pub fn apply(&mut self, base: &TableSnapshot, action: &ManifestAction) -> LstResult<()> {
        match action {
            ManifestAction::AddFile(entry) => {
                if self.added.contains_key(&entry.path) {
                    return Err(LstError::invalid_replay(format!(
                        "txn added {} twice",
                        entry.path
                    )));
                }
                self.added.insert(entry.path.clone(), (entry.clone(), None));
            }
            ManifestAction::RemoveFile { path } => {
                if self.added.remove(path).is_some() {
                    // A file created and removed within the txn vanishes.
                } else if base.file(path).is_some() && !self.removed_base.contains(path) {
                    self.removed_base.insert(path.clone());
                    self.dv_on_base.remove(path);
                    self.dv_removed_base.remove(path);
                } else {
                    return Err(LstError::invalid_replay(format!(
                        "txn removed unknown or already-removed file {path}"
                    )));
                }
            }
            ManifestAction::AddDv { data_file, dv } => {
                if let Some((_, slot)) = self.added.get_mut(data_file) {
                    *slot = Some(dv.clone());
                } else if let Some(base_state) = base.file(data_file) {
                    if self.removed_base.contains(data_file) {
                        return Err(LstError::invalid_replay(format!(
                            "dv added to file {data_file} the txn already removed"
                        )));
                    }
                    let old = match self.dv_on_base.get(data_file) {
                        // Keep the ORIGINAL base dv path: intermediate
                        // txn-local DVs are reconciled away.
                        Some((old, _)) => old.clone(),
                        None => match self.dv_removed_base.remove(data_file) {
                            // An earlier RemoveDv of the committed DV in
                            // this txn already recorded the original path.
                            Some(old) => Some(old),
                            None => base_state.delete_vector.as_ref().map(|d| d.path.clone()),
                        },
                    };
                    self.dv_on_base.insert(data_file.clone(), (old, dv.clone()));
                } else {
                    return Err(LstError::invalid_replay(format!(
                        "dv for file {data_file} unknown to txn"
                    )));
                }
            }
            ManifestAction::RemoveDv { data_file, dv_path } => {
                if let Some((_, slot)) = self.added.get_mut(data_file) {
                    match slot {
                        Some(dv) if &dv.path == dv_path => *slot = None,
                        _ => {
                            return Err(LstError::invalid_replay(format!(
                                "dv removal of {dv_path} not current for txn file {data_file}"
                            )))
                        }
                    }
                } else if let Some((old, current)) = self.dv_on_base.get(data_file) {
                    if &current.path == dv_path {
                        let old = old.clone();
                        self.dv_on_base.remove(data_file);
                        if let Some(old) = old {
                            // The committed DV is still logically removed;
                            // keep that fact so to_actions emits it.
                            self.dv_removed_base.insert(data_file.clone(), old);
                        }
                    } else {
                        return Err(LstError::invalid_replay(format!(
                            "dv removal of {dv_path} not current for base file {data_file}"
                        )));
                    }
                } else if base
                    .file(data_file)
                    .and_then(|f| f.delete_vector.as_ref())
                    .is_some_and(|dv| &dv.path == dv_path)
                    && !self.removed_base.contains(data_file)
                    && !self.dv_removed_base.contains_key(data_file)
                {
                    // Removing the base's committed DV (the prelude to the
                    // Remove+Add pair a delete statement emits, §4.2).
                    self.dv_removed_base
                        .insert(data_file.clone(), dv_path.clone());
                } else {
                    return Err(LstError::invalid_replay(format!(
                        "dv removal for file {data_file} unknown to txn"
                    )));
                }
            }
        }
        Ok(())
    }

    /// The reconciled action list — the content of the transaction
    /// manifest as committed.
    pub fn to_actions(&self) -> Vec<ManifestAction> {
        let mut actions = Vec::new();
        for path in &self.removed_base {
            actions.push(ManifestAction::remove_file(path.clone()));
        }
        for (data_file, old_path) in &self.dv_removed_base {
            actions.push(ManifestAction::remove_dv(
                data_file.clone(),
                old_path.clone(),
            ));
        }
        for (data_file, (old, dv)) in &self.dv_on_base {
            if let Some(old_path) = old {
                actions.push(ManifestAction::remove_dv(
                    data_file.clone(),
                    old_path.clone(),
                ));
            }
            actions.push(ManifestAction::AddDv {
                data_file: data_file.clone(),
                dv: dv.clone(),
            });
        }
        for (entry, dv) in self.added.values() {
            actions.push(ManifestAction::AddFile(entry.clone()));
            if let Some(dv) = dv {
                actions.push(ManifestAction::AddDv {
                    data_file: entry.path.clone(),
                    dv: dv.clone(),
                });
            }
        }
        actions
    }

    /// The committed snapshot overlaid with this delta — what statements of
    /// the transaction see (§3.2.3: "overlays these changes on the
    /// committed manifests").
    pub fn overlay(&self, base: &TableSnapshot) -> TableSnapshot {
        let mut out = TableSnapshot::empty();
        out.set_upto(base.upto());
        for state in base.files() {
            let path = &state.entry.path;
            if self.removed_base.contains(path) {
                continue;
            }
            let mut state = state.clone();
            if let Some((_, dv)) = self.dv_on_base.get(path) {
                state.delete_vector = Some(dv.clone());
            } else if self.dv_removed_base.contains_key(path) {
                state.delete_vector = None;
            }
            out.insert_state(state);
        }
        for (entry, dv) in self.added.values() {
            out.insert_state(DataFileState {
                entry: entry.clone(),
                delete_vector: dv.clone(),
                added_at: base.upto().next(),
            });
        }
        out
    }

    /// Paths of base data files this transaction modified (removed or
    /// re-DV'd) — the write set used for conflict detection at data-file
    /// granularity (§4.4.1). Files *added* by the transaction are not
    /// conflicts: inserts never conflict.
    pub fn modified_base_files(&self) -> impl Iterator<Item = &str> {
        self.removed_base
            .iter()
            .map(String::as_str)
            .chain(self.dv_on_base.keys().map(String::as_str))
            .chain(self.dv_removed_base.keys().map(String::as_str))
    }

    /// Paths of files added by this transaction (for GC bookkeeping on
    /// abort).
    pub fn added_files(&self) -> impl Iterator<Item = &str> {
        self.added.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Manifest, SequenceId};

    fn base() -> TableSnapshot {
        let m = Manifest::from_actions(vec![
            ManifestAction::add_file("t/base1", 10, 100, 0),
            ManifestAction::add_file("t/base2", 20, 200, 1),
            ManifestAction::add_dv("t/base2", "t/base2.dv0", 3),
        ]);
        TableSnapshot::from_manifests([(SequenceId(1), &m)]).unwrap()
    }

    #[test]
    fn insert_then_read_own_writes() {
        let base = base();
        let mut delta = TxnDelta::new();
        delta
            .apply(&base, &ManifestAction::add_file("t/new1", 5, 50, 0))
            .unwrap();
        let view = delta.overlay(&base);
        assert_eq!(view.file_count(), 3);
        assert_eq!(view.live_rows(), 10 + 17 + 5);
        // Base is untouched (private changes).
        assert_eq!(base.file_count(), 2);
    }

    #[test]
    fn add_then_remove_in_same_txn_reconciles_to_nothing() {
        let base = base();
        let mut delta = TxnDelta::new();
        delta
            .apply(&base, &ManifestAction::add_file("t/tmp", 5, 50, 0))
            .unwrap();
        delta
            .apply(&base, &ManifestAction::remove_file("t/tmp"))
            .unwrap();
        assert!(delta.is_empty());
        assert!(delta.to_actions().is_empty());
    }

    #[test]
    fn double_update_reconciles_dv_chain() {
        // Statement 1 deletes rows of base1 (dv A); statement 2 deletes
        // more rows (dv B replacing A). Final manifest must reference only
        // dv B and never mention A.
        let base = base();
        let mut delta = TxnDelta::new();
        delta
            .apply(&base, &ManifestAction::add_dv("t/base1", "t/base1.dvA", 2))
            .unwrap();
        delta
            .apply(&base, &ManifestAction::remove_dv("t/base1", "t/base1.dvA"))
            .unwrap();
        delta
            .apply(&base, &ManifestAction::add_dv("t/base1", "t/base1.dvB", 4))
            .unwrap();
        let actions = delta.to_actions();
        assert_eq!(
            actions,
            vec![ManifestAction::add_dv("t/base1", "t/base1.dvB", 4)]
        );
        assert!(!format!("{actions:?}").contains("dvA"));
    }

    #[test]
    fn dv_on_file_with_existing_base_dv_removes_original() {
        let base = base();
        let mut delta = TxnDelta::new();
        // base2 already has dv0 with 3 deletes; txn merges in more deletes.
        delta
            .apply(&base, &ManifestAction::add_dv("t/base2", "t/base2.dv1", 7))
            .unwrap();
        let actions = delta.to_actions();
        assert_eq!(
            actions,
            vec![
                ManifestAction::remove_dv("t/base2", "t/base2.dv0"),
                ManifestAction::add_dv("t/base2", "t/base2.dv1", 7),
            ]
        );
        let view = delta.overlay(&base);
        assert_eq!(view.file("t/base2").unwrap().live_rows(), 13);
    }

    #[test]
    fn remove_base_file() {
        let base = base();
        let mut delta = TxnDelta::new();
        delta
            .apply(&base, &ManifestAction::remove_file("t/base1"))
            .unwrap();
        let view = delta.overlay(&base);
        assert_eq!(view.file_count(), 1);
        assert!(view.file("t/base1").is_none());
        assert_eq!(
            delta.to_actions(),
            vec![ManifestAction::remove_file("t/base1")]
        );
        assert_eq!(
            delta.modified_base_files().collect::<Vec<_>>(),
            vec!["t/base1"]
        );
    }

    #[test]
    fn dv_then_remove_same_base_file_keeps_only_removal() {
        let base = base();
        let mut delta = TxnDelta::new();
        delta
            .apply(&base, &ManifestAction::add_dv("t/base1", "t/base1.dvA", 2))
            .unwrap();
        delta
            .apply(&base, &ManifestAction::remove_file("t/base1"))
            .unwrap();
        assert_eq!(
            delta.to_actions(),
            vec![ManifestAction::remove_file("t/base1")]
        );
    }

    #[test]
    fn dv_on_own_added_file() {
        let base = base();
        let mut delta = TxnDelta::new();
        delta
            .apply(&base, &ManifestAction::add_file("t/new", 8, 80, 0))
            .unwrap();
        delta
            .apply(&base, &ManifestAction::add_dv("t/new", "t/new.dv", 3))
            .unwrap();
        let actions = delta.to_actions();
        assert_eq!(actions.len(), 2);
        let view = delta.overlay(&base);
        assert_eq!(view.file("t/new").unwrap().live_rows(), 5);
    }

    #[test]
    fn invalid_operations_rejected() {
        let base = base();
        let mut delta = TxnDelta::new();
        assert!(delta
            .apply(&base, &ManifestAction::remove_file("t/ghost"))
            .is_err());
        assert!(delta
            .apply(&base, &ManifestAction::add_dv("t/ghost", "x.dv", 1))
            .is_err());
        delta
            .apply(&base, &ManifestAction::remove_file("t/base1"))
            .unwrap();
        // double removal
        assert!(delta
            .apply(&base, &ManifestAction::remove_file("t/base1"))
            .is_err());
        // dv on removed file
        assert!(delta
            .apply(&base, &ManifestAction::add_dv("t/base1", "x.dv", 1))
            .is_err());
    }

    #[test]
    fn remove_then_add_of_committed_base_dv() {
        // The action pair a delete statement emits against a file whose DV
        // was committed by an EARLIER transaction: RemoveDv(old)+AddDv(new).
        let base = base(); // base2 has committed dv0 (3 deletes)
        let mut delta = TxnDelta::new();
        delta
            .apply(&base, &ManifestAction::remove_dv("t/base2", "t/base2.dv0"))
            .unwrap();
        // Mid-statement view: the base DV is gone.
        let view = delta.overlay(&base);
        assert_eq!(view.file("t/base2").unwrap().live_rows(), 20);
        delta
            .apply(&base, &ManifestAction::add_dv("t/base2", "t/base2.dv1", 5))
            .unwrap();
        assert_eq!(
            delta.to_actions(),
            vec![
                ManifestAction::remove_dv("t/base2", "t/base2.dv0"),
                ManifestAction::add_dv("t/base2", "t/base2.dv1", 5),
            ]
        );
        assert_eq!(
            delta.modified_base_files().collect::<Vec<_>>(),
            vec!["t/base2"]
        );
        // Wrong path or double removal is rejected.
        let mut bad = TxnDelta::new();
        assert!(bad
            .apply(&base, &ManifestAction::remove_dv("t/base2", "t/wrong.dv"))
            .is_err());
        let mut dup = TxnDelta::new();
        dup.apply(&base, &ManifestAction::remove_dv("t/base2", "t/base2.dv0"))
            .unwrap();
        assert!(dup
            .apply(&base, &ManifestAction::remove_dv("t/base2", "t/base2.dv0"))
            .is_err());
    }

    #[test]
    fn standalone_base_dv_removal_survives_to_actions() {
        let base = base();
        let mut delta = TxnDelta::new();
        delta
            .apply(&base, &ManifestAction::remove_dv("t/base2", "t/base2.dv0"))
            .unwrap();
        assert!(!delta.is_empty());
        let manifest = Manifest::from_actions(delta.to_actions());
        let mut committed = base.clone();
        committed.apply_manifest(SequenceId(2), &manifest).unwrap();
        assert_eq!(committed.file("t/base2").unwrap().live_rows(), 20);
    }

    #[test]
    fn committed_manifest_replays_onto_base() {
        // End-to-end: the reconciled actions must apply cleanly to the base
        // snapshot and produce the overlay view.
        let base = base();
        let mut delta = TxnDelta::new();
        delta
            .apply(&base, &ManifestAction::add_file("t/new", 5, 50, 0))
            .unwrap();
        delta
            .apply(&base, &ManifestAction::add_dv("t/base2", "t/base2.dv1", 5))
            .unwrap();
        delta
            .apply(&base, &ManifestAction::remove_file("t/base1"))
            .unwrap();
        let manifest = Manifest::from_actions(delta.to_actions());
        let mut committed = base.clone();
        committed.apply_manifest(SequenceId(2), &manifest).unwrap();
        let overlay = delta.overlay(&base);
        assert_eq!(committed.live_rows(), overlay.live_rows());
        assert_eq!(committed.file_count(), overlay.file_count());
    }
}
