//! Manifest files: JSON-lines serialization of action sequences.

use crate::{LstError, LstResult, ManifestAction};
use bytes::Bytes;

/// A transaction's manifest: the ordered list of actions it performed.
///
/// **Serialization is JSON lines (one action per line).** This is the
/// property that makes the distributed write path (§3.2.2, §4.3) work:
/// every BE task serializes its own actions as complete lines into a staged
/// block, and the Block Blob commit concatenates blocks in any order into a
/// valid manifest — no merging or coordination between BEs required.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Manifest {
    /// Actions in replay order.
    pub actions: Vec<ManifestAction>,
}

impl Manifest {
    /// An empty manifest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap an action list.
    pub fn from_actions(actions: Vec<ManifestAction>) -> Self {
        Manifest { actions }
    }

    /// Serialize to JSON lines.
    pub fn encode(&self) -> Bytes {
        Self::encode_actions(&self.actions)
    }

    /// Serialize a slice of actions to JSON lines — the payload of one
    /// manifest *block* as written by a single BE task.
    pub fn encode_actions(actions: &[ManifestAction]) -> Bytes {
        let mut out = String::new();
        for a in actions {
            out.push_str(&serde_json::to_string(a).expect("actions always serialize"));
            out.push('\n');
        }
        Bytes::from(out)
    }

    /// Parse JSON lines (tolerates a missing trailing newline and blank
    /// lines, which appear when concatenating blocks).
    pub fn decode(data: &[u8]) -> LstResult<Self> {
        let text =
            std::str::from_utf8(data).map_err(|_| LstError::malformed("manifest is not UTF-8"))?;
        let mut actions = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let action = serde_json::from_str(line)
                .map_err(|e| LstError::malformed(format!("manifest line {}: {e}", i + 1)))?;
            actions.push(action);
        }
        Ok(Manifest { actions })
    }

    /// Number of actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Is the manifest empty?
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest::from_actions(vec![
            ManifestAction::add_file("t/f1", 10, 100, 0),
            ManifestAction::add_dv("t/f1", "t/f1.dv", 2),
            ManifestAction::remove_file("t/f0"),
        ])
    }

    #[test]
    fn encode_decode_round_trip() {
        let m = sample();
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn concatenated_blocks_decode_as_one_manifest() {
        // Two BEs write independent blocks; commit concatenates them.
        let block_a = Manifest::encode_actions(&[ManifestAction::add_file("t/a", 1, 10, 0)]);
        let block_b = Manifest::encode_actions(&[
            ManifestAction::add_file("t/b", 2, 20, 1),
            ManifestAction::add_dv("t/b", "t/b.dv", 1),
        ]);
        let mut joined = block_a.to_vec();
        joined.extend_from_slice(&block_b);
        let m = Manifest::decode(&joined).unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(m.actions[0], ManifestAction::add_file("t/a", 1, 10, 0));
    }

    #[test]
    fn tolerates_blank_lines_and_missing_trailing_newline() {
        let raw = format!(
            "\n{}\n\n{}",
            serde_json::to_string(&ManifestAction::remove_file("x")).unwrap(),
            serde_json::to_string(&ManifestAction::remove_file("y")).unwrap(),
        );
        let m = Manifest::decode(raw.as_bytes()).unwrap();
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Manifest::decode(b"{not json}\n").is_err());
        assert!(Manifest::decode(&[0xff, 0xfe]).is_err());
        let err = Manifest::decode(b"{\"action\":\"warp_drive\"}\n").unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn empty_manifest() {
        let m = Manifest::new();
        assert!(m.is_empty());
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
        assert_eq!(Manifest::decode(b"").unwrap(), m);
    }
}
