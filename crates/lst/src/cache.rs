//! BE-side snapshot reconstruction cache (§3.2.1).

use crate::{LstResult, Manifest, SequenceId, TableSnapshot};
use parking_lot::Mutex;
use polaris_obs::CacheMeter;
use std::sync::Arc;

/// Caches reconstructed [`TableSnapshot`]s for one table so that different
/// operations on different snapshots share work, and new commits extend the
/// cached state *incrementally* instead of replaying from scratch.
///
/// The cache is purely an optimization: it lives on BE compute nodes and
/// its loss "has no impact on the overall consistency of the system" (§3.3)
/// — a fresh node rebuilds it from OneLake as queries run.
///
/// Hit/miss/replay accounting lives in a [`CacheMeter`] of lock-free
/// counters, so readers on the hit path never serialize on a stats lock and
/// the same counters can be shared with an engine-wide metrics registry via
/// [`SnapshotCache::with_meter`].
pub struct SnapshotCache {
    /// Cached snapshots, ascending by sequence. Bounded by `capacity`.
    entries: Mutex<Vec<(SequenceId, Arc<TableSnapshot>)>>,
    capacity: usize,
    meter: CacheMeter,
}

impl SnapshotCache {
    /// A cache retaining up to `capacity` distinct snapshots.
    pub fn new(capacity: usize) -> Self {
        SnapshotCache::with_meter(capacity, CacheMeter::default())
    }

    /// A cache whose counters are shared handles — typically
    /// [`CacheMeter::from_registry`], so hits and misses surface under
    /// `lst.cache.*` in the engine's metrics snapshot.
    pub fn with_meter(capacity: usize, meter: CacheMeter) -> Self {
        assert!(capacity > 0, "cache needs room for at least one snapshot");
        SnapshotCache {
            entries: Mutex::new(Vec::new()),
            capacity,
            meter,
        }
    }

    /// The cache's meter (shared counter handles).
    pub fn meter(&self) -> &CacheMeter {
        &self.meter
    }

    /// Snapshot as of `upto`, reconstructing incrementally.
    ///
    /// `fetch(from_exclusive, to_inclusive)` must return the committed
    /// manifests with sequence in `(from, to]`, ascending — in Polaris this
    /// reads the `Manifests` catalog rows and fetches manifest blobs.
    pub fn snapshot_at(
        &self,
        upto: SequenceId,
        fetch: impl FnOnce(SequenceId, SequenceId) -> LstResult<Vec<(SequenceId, Manifest)>>,
    ) -> LstResult<Arc<TableSnapshot>> {
        // Best cached base: the greatest cached sequence <= upto.
        let base: Option<(SequenceId, Arc<TableSnapshot>)> = {
            let entries = self.entries.lock();
            entries.iter().rev().find(|(seq, _)| *seq <= upto).cloned()
        };
        if let Some((seq, snap)) = &base {
            if *seq == upto {
                self.meter.hits.inc();
                return Ok(snap.clone());
            }
        }
        self.meter.misses.inc();
        let _alloc = polaris_obs::AllocScope::enter(polaris_obs::AllocPhase::Replay);
        let mut replay_span = self.meter.tracer.span("lst.cache.replay");
        let from = base.as_ref().map_or(SequenceId(0), |(seq, _)| *seq);
        replay_span.attr("from", from.0);
        replay_span.attr("to", upto.0);
        let manifests = fetch(from, upto)?;
        self.meter.replayed_manifests.add(manifests.len() as u64);
        replay_span.attr("manifests", manifests.len());
        // Obtain an owned base to extend. When this reconstruction holds
        // the only reference to the cached base (the steady state for a
        // single stream of commits: the previous statement's snapshot is
        // already dropped), the entry is *stolen* and extended in place —
        // no deep clone of a file map that grows with every commit. A base
        // still shared with live readers is cloned as before; losing the
        // stolen entry on a replay error is fine because the cache is
        // purely an optimization.
        let mut entries = self.entries.lock();
        if let Ok(pos) = entries.binary_search_by_key(&upto, |(s, _)| *s) {
            // Raced with another reconstruction; keep the existing entry.
            return Ok(entries[pos].1.clone());
        }
        let mut snap = match base {
            Some((seq, handle)) => match entries.binary_search_by_key(&seq, |(s, _)| *s) {
                Ok(pos) => {
                    let (_, cached) = entries.remove(pos);
                    drop(handle);
                    match Arc::try_unwrap(cached) {
                        Ok(owned) => owned,
                        Err(shared) => {
                            let copy = (*shared).clone();
                            entries.insert(pos, (seq, shared));
                            copy
                        }
                    }
                }
                // The base was evicted while we fetched; clone our handle.
                Err(_) => (*handle).clone(),
            },
            None => TableSnapshot::empty(),
        };
        for (seq, m) in &manifests {
            snap.apply_manifest(*seq, m)?;
        }
        // The watermark advances to `upto` even if the tail had no
        // manifests for this table (commits to other tables still move the
        // global sequence).
        snap.set_upto(upto);
        let arc = Arc::new(snap);
        match entries.binary_search_by_key(&upto, |(s, _)| *s) {
            Ok(_) => {} // raced with another reconstruction; keep existing
            Err(pos) => {
                entries.insert(pos, (upto, arc.clone()));
                if entries.len() > self.capacity {
                    // Evict the oldest snapshot: recent sequences are the
                    // hot ones (new transactions always read fresh state).
                    entries.remove(0);
                }
            }
        }
        Ok(arc)
    }

    /// The greatest cached sequence `<= upto`, if any — used to decide
    /// whether restoring a checkpoint first would be cheaper than a full
    /// manifest replay.
    pub fn best_base(&self, upto: SequenceId) -> Option<SequenceId> {
        self.entries
            .lock()
            .iter()
            .rev()
            .find(|(seq, _)| *seq <= upto)
            .map(|(seq, _)| *seq)
    }

    /// Seed the cache with an externally reconstructed snapshot (a restored
    /// checkpoint, §5.2). Later `snapshot_at` calls extend from it.
    pub fn seed(&self, snapshot: TableSnapshot) {
        let seq = snapshot.upto();
        let mut entries = self.entries.lock();
        if let Err(pos) = entries.binary_search_by_key(&seq, |(s, _)| *s) {
            entries.insert(pos, (seq, Arc::new(snapshot)));
            if entries.len() > self.capacity {
                entries.remove(0);
            }
        }
    }

    /// Drop every cached snapshot (simulates node restart / cache loss).
    pub fn invalidate(&self) {
        self.entries.lock().clear();
    }

    /// (hits, misses) since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.meter.hits.get(), self.meter.misses.get())
    }

    /// `(resident snapshots, capacity)` — the cache-pressure probe
    /// continuous telemetry samples per table. A cache pinned at capacity
    /// with a high miss rate means reconstruction is thrashing.
    pub fn occupancy(&self) -> (usize, usize) {
        (self.entries.lock().len(), self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ManifestAction;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn manifest(i: u64) -> Manifest {
        Manifest::from_actions(vec![ManifestAction::add_file(
            format!("t/f{i}"),
            10,
            100,
            0,
        )])
    }

    /// Fetch closure serving manifests 1..=10, counting invocations.
    fn fetcher(
        calls: &AtomicUsize,
    ) -> impl Fn(SequenceId, SequenceId) -> LstResult<Vec<(SequenceId, Manifest)>> + '_ {
        move |from, to| {
            calls.fetch_add(1, Ordering::SeqCst);
            Ok((from.0 + 1..=to.0)
                .map(|i| (SequenceId(i), manifest(i)))
                .collect())
        }
    }

    #[test]
    fn cold_build_then_hit() {
        let cache = SnapshotCache::new(4);
        let calls = AtomicUsize::new(0);
        let s1 = cache.snapshot_at(SequenceId(5), fetcher(&calls)).unwrap();
        assert_eq!(s1.file_count(), 5);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        let s2 = cache.snapshot_at(SequenceId(5), fetcher(&calls)).unwrap();
        assert!(Arc::ptr_eq(&s1, &s2));
        assert_eq!(calls.load(Ordering::SeqCst), 1, "hit must not re-fetch");
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn incremental_extension_from_cached_base() {
        let cache = SnapshotCache::new(4);
        let calls = AtomicUsize::new(0);
        cache.snapshot_at(SequenceId(5), fetcher(&calls)).unwrap();
        // Extending to 8 must fetch only (5, 8].
        let ranges = Mutex::new(Vec::new());
        let s = cache
            .snapshot_at(SequenceId(8), |from, to| {
                ranges.lock().push((from, to));
                Ok((from.0 + 1..=to.0)
                    .map(|i| (SequenceId(i), manifest(i)))
                    .collect())
            })
            .unwrap();
        assert_eq!(s.file_count(), 8);
        assert_eq!(*ranges.lock(), vec![(SequenceId(5), SequenceId(8))]);
    }

    #[test]
    fn older_snapshot_reconstructs_without_using_newer_base() {
        let cache = SnapshotCache::new(4);
        let calls = AtomicUsize::new(0);
        cache.snapshot_at(SequenceId(8), fetcher(&calls)).unwrap();
        // Time travel to 3: cannot extend from 8, rebuilds from empty.
        let s = cache.snapshot_at(SequenceId(3), fetcher(&calls)).unwrap();
        assert_eq!(s.file_count(), 3);
        assert_eq!(s.upto(), SequenceId(3));
    }

    #[test]
    fn eviction_bounds_entries() {
        let cache = SnapshotCache::new(2);
        let calls = AtomicUsize::new(0);
        for seq in 1..=5u64 {
            cache.snapshot_at(SequenceId(seq), fetcher(&calls)).unwrap();
        }
        // Oldest entries evicted; newest still hits.
        let before = calls.load(Ordering::SeqCst);
        cache.snapshot_at(SequenceId(5), fetcher(&calls)).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), before);
        // Evicted seq 1 rebuilds (from scratch or nearest smaller base).
        cache.snapshot_at(SequenceId(1), fetcher(&calls)).unwrap();
        assert!(calls.load(Ordering::SeqCst) > before);
    }

    #[test]
    fn invalidate_forces_rebuild() {
        let cache = SnapshotCache::new(4);
        let calls = AtomicUsize::new(0);
        cache.snapshot_at(SequenceId(3), fetcher(&calls)).unwrap();
        cache.invalidate();
        cache.snapshot_at(SequenceId(3), fetcher(&calls)).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        // Consistency is unaffected by cache loss.
        let s = cache.snapshot_at(SequenceId(3), fetcher(&calls)).unwrap();
        assert_eq!(s.file_count(), 3);
    }

    #[test]
    fn replay_lengths_are_counted() {
        let cache = SnapshotCache::new(4);
        let calls = AtomicUsize::new(0);
        cache.snapshot_at(SequenceId(5), fetcher(&calls)).unwrap();
        assert_eq!(cache.meter().replayed_manifests.get(), 5);
        // Incremental extension replays only the (5, 8] tail.
        cache.snapshot_at(SequenceId(8), fetcher(&calls)).unwrap();
        assert_eq!(cache.meter().replayed_manifests.get(), 8);
        // A hit replays nothing.
        cache.snapshot_at(SequenceId(8), fetcher(&calls)).unwrap();
        assert_eq!(cache.meter().replayed_manifests.get(), 8);
    }

    #[test]
    fn concurrent_readers_agree_on_stats() {
        // Hammer one cache from many threads; with lock-free counters the
        // totals must still add up: every snapshot_at is exactly one hit or
        // one miss, and every reader sees a correct snapshot.
        let cache = Arc::new(SnapshotCache::new(8));
        let threads = 8;
        let iters = 200;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..iters {
                        let upto = SequenceId(1 + ((t + i) % 4) as u64);
                        let snap = cache
                            .snapshot_at(upto, |from, to| {
                                Ok((from.0 + 1..=to.0)
                                    .map(|i| (SequenceId(i), manifest(i)))
                                    .collect())
                            })
                            .unwrap();
                        assert_eq!(snap.upto(), upto);
                        assert_eq!(snap.file_count(), upto.0 as usize);
                    }
                });
            }
        });
        let (hits, misses) = cache.stats();
        assert_eq!(hits + misses, (threads * iters) as u64);
        assert!(hits > 0, "steady state must serve hits");
        assert!(misses >= 4, "each distinct sequence missed at least once");
    }

    #[test]
    fn watermark_advances_past_empty_tail() {
        let cache = SnapshotCache::new(4);
        // Table had manifests only at seq 1..=2, but global sequence is 9.
        let s = cache
            .snapshot_at(SequenceId(9), |from, _to| {
                Ok((from.0 + 1..=2)
                    .map(|i| (SequenceId(i), manifest(i)))
                    .collect())
            })
            .unwrap();
        assert_eq!(s.file_count(), 2);
        assert_eq!(s.upto(), SequenceId(9));
    }
}
