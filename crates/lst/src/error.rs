//! Error type for the LST layer.

use std::fmt;

/// Result alias for LST operations.
pub type LstResult<T> = Result<T, LstError>;

/// Errors raised while reading or replaying physical metadata.
#[derive(Debug)]
pub enum LstError {
    /// A manifest or checkpoint file failed to parse.
    Malformed {
        /// Description of the problem.
        detail: String,
    },
    /// Replay encountered an action inconsistent with the current state
    /// (e.g. removing a file that is not live). Indicates metadata
    /// corruption or a bug in the commit path.
    InvalidReplay {
        /// Description of the inconsistency.
        detail: String,
    },
    /// Underlying object-store failure.
    Store(polaris_store::StoreError),
}

impl fmt::Display for LstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LstError::Malformed { detail } => write!(f, "malformed metadata file: {detail}"),
            LstError::InvalidReplay { detail } => write!(f, "invalid manifest replay: {detail}"),
            LstError::Store(e) => write!(f, "object store error: {e}"),
        }
    }
}

impl std::error::Error for LstError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LstError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<polaris_store::StoreError> for LstError {
    fn from(e: polaris_store::StoreError) -> Self {
        LstError::Store(e)
    }
}

impl LstError {
    /// Shorthand for [`LstError::Malformed`].
    pub fn malformed(detail: impl Into<String>) -> Self {
        LstError::Malformed {
            detail: detail.into(),
        }
    }

    /// Shorthand for [`LstError::InvalidReplay`].
    pub fn invalid_replay(detail: impl Into<String>) -> Self {
        LstError::InvalidReplay {
            detail: detail.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = LstError::malformed("bad json");
        assert!(e.to_string().contains("bad json"));
        let store_err = polaris_store::StoreError::Transient { detail: "x".into() };
        let e = LstError::from(store_err);
        assert!(std::error::Error::source(&e).is_some());
    }
}
