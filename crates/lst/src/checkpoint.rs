//! Checkpoint files: compacted full-state snapshots of the manifest chain
//! (§5.2).

use crate::{DataFileState, LstError, LstResult, SequenceId, TableSnapshot};
use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// A checkpoint: the complete table state as of `upto`, written by the STO
/// once a table accumulates enough manifests.
///
/// Readers start from the most recent checkpoint visible to their snapshot
/// and replay only the manifests after it — turning O(total commits)
/// reconstruction into O(commits since checkpoint). Checkpoints never
/// modify data files and therefore never conflict with user transactions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Sequence number this checkpoint covers through (inclusive).
    pub upto: SequenceId,
    /// Full file state at `upto`.
    files: Vec<DataFileState>,
}

impl Checkpoint {
    /// Capture a snapshot into a checkpoint.
    pub fn from_snapshot(snapshot: &TableSnapshot) -> Self {
        Checkpoint {
            upto: snapshot.upto(),
            files: snapshot.files().cloned().collect(),
        }
    }

    /// Restore the snapshot this checkpoint captured.
    pub fn to_snapshot(&self) -> TableSnapshot {
        let mut snap = TableSnapshot::empty();
        for state in &self.files {
            snap.insert_state(state.clone());
        }
        snap.set_upto(self.upto);
        snap
    }

    /// Number of live files captured.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Serialize to the checkpoint file format (JSON).
    pub fn encode(&self) -> Bytes {
        Bytes::from(serde_json::to_vec(self).expect("checkpoints always serialize"))
    }

    /// Parse a checkpoint file.
    pub fn decode(data: &[u8]) -> LstResult<Self> {
        serde_json::from_slice(data).map_err(|e| LstError::malformed(format!("checkpoint: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Manifest, ManifestAction};

    fn snapshot() -> TableSnapshot {
        let m1 = Manifest::from_actions(vec![
            ManifestAction::add_file("t/a", 10, 100, 0),
            ManifestAction::add_file("t/b", 20, 200, 1),
        ]);
        let m2 = Manifest::from_actions(vec![
            ManifestAction::add_dv("t/b", "t/b.dv", 4),
            ManifestAction::remove_file("t/a"),
            ManifestAction::add_file("t/c", 30, 300, 0),
        ]);
        TableSnapshot::from_manifests([(SequenceId(1), &m1), (SequenceId(2), &m2)]).unwrap()
    }

    #[test]
    fn checkpoint_round_trip() {
        let snap = snapshot();
        let ckpt = Checkpoint::from_snapshot(&snap);
        assert_eq!(ckpt.upto, SequenceId(2));
        assert_eq!(ckpt.file_count(), 2);
        let decoded = Checkpoint::decode(&ckpt.encode()).unwrap();
        assert_eq!(decoded, ckpt);
        let restored = decoded.to_snapshot();
        assert_eq!(restored, snap);
    }

    #[test]
    fn replay_continues_after_checkpoint_restore() {
        let snap = snapshot();
        let mut restored = Checkpoint::from_snapshot(&snap).to_snapshot();
        let m3 = Manifest::from_actions(vec![ManifestAction::add_file("t/d", 5, 50, 1)]);
        restored.apply_manifest(SequenceId(3), &m3).unwrap();
        assert_eq!(restored.file_count(), 3);
        assert_eq!(restored.upto(), SequenceId(3));
        // a manifest at or before the checkpoint must be rejected
        let mut restored2 = Checkpoint::from_snapshot(&snap).to_snapshot();
        let stale = Manifest::from_actions(vec![ManifestAction::add_file("t/e", 1, 10, 0)]);
        assert!(restored2.apply_manifest(SequenceId(2), &stale).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Checkpoint::decode(b"not json").is_err());
        assert!(Checkpoint::decode(b"{}").is_err());
    }
}
