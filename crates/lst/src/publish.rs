//! Async "lake" snapshot publishing in the Delta Lake format (§5.4).
//!
//! Polaris keeps its internal manifests in a private location and, after
//! each commit, the STO transforms and copies the committed metadata into a
//! user-accessible `_delta_log` so other engines (Spark, etc.) can read the
//! same data files with zero copies. The internal format "closely aligns"
//! with Delta, so publishing is a near-1:1 transformation.

use crate::{LstResult, Manifest, ManifestAction, SequenceId, TableSnapshot};
use polaris_store::{BlobPath, ObjectStore, Stamp};
use serde_json::json;

/// Publish one committed manifest as a Delta-log commit file.
///
/// Writes `<table_root>/_delta_log/<%020d>.json` containing Delta-style
/// `add` / `remove` actions plus a `commitInfo` line. Returns the blob path
/// written.
pub fn publish_manifest_as_delta(
    store: &dyn ObjectStore,
    table_root: &str,
    seq: SequenceId,
    manifest: &Manifest,
) -> LstResult<BlobPath> {
    let mut lines = Vec::with_capacity(manifest.len() + 1);
    lines.push(
        json!({
            "commitInfo": {
                "operation": "POLARIS_COMMIT",
                "polarisSequence": seq.0,
                "engineInfo": "polaris-tx",
            }
        })
        .to_string(),
    );
    for action in &manifest.actions {
        lines.push(delta_action_json(action).to_string());
    }
    let path = BlobPath::new(format!("{table_root}/_delta_log/{:020}.json", seq.0))?;
    store.put(&path, lines.join("\n").into_bytes().into(), Stamp::SYSTEM)?;
    Ok(path)
}

/// Publish a full snapshot as a Delta checkpoint-style file
/// (`_delta_log/<%020d>.checkpoint.json`) listing every live file.
pub fn publish_snapshot_as_delta(
    store: &dyn ObjectStore,
    table_root: &str,
    snapshot: &TableSnapshot,
) -> LstResult<BlobPath> {
    let mut lines = Vec::with_capacity(snapshot.file_count());
    for action in snapshot.to_actions() {
        lines.push(delta_action_json(&action).to_string());
    }
    let path = BlobPath::new(format!(
        "{table_root}/_delta_log/{:020}.checkpoint.json",
        snapshot.upto().0
    ))?;
    store.put(&path, lines.join("\n").into_bytes().into(), Stamp::SYSTEM)?;
    Ok(path)
}

fn delta_action_json(action: &ManifestAction) -> serde_json::Value {
    match action {
        ManifestAction::AddFile(e) => json!({
            "add": {
                "path": e.path,
                "size": e.bytes,
                "stats": { "numRecords": e.rows },
                "partitionValues": { "distribution": e.distribution.to_string() },
                "dataChange": true,
            }
        }),
        ManifestAction::RemoveFile { path } => json!({
            "remove": { "path": path, "dataChange": true }
        }),
        ManifestAction::AddDv { data_file, dv } => json!({
            "add": {
                "path": data_file,
                "deletionVector": {
                    "storageType": "p",
                    "pathOrInlineDv": dv.path,
                    "cardinality": dv.cardinality,
                },
                "dataChange": true,
            }
        }),
        ManifestAction::RemoveDv { data_file, dv_path } => json!({
            "remove": {
                "path": data_file,
                "deletionVector": { "storageType": "p", "pathOrInlineDv": dv_path },
                "dataChange": true,
            }
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_store::MemoryStore;

    fn manifest() -> Manifest {
        Manifest::from_actions(vec![
            ManifestAction::add_file("lake/t/data/f1.pcf", 100, 4096, 0),
            ManifestAction::add_dv("lake/t/data/f0.pcf", "lake/t/dv/f0.dv", 5),
        ])
    }

    #[test]
    fn publishes_delta_commit_file() {
        let store = MemoryStore::new();
        let path = publish_manifest_as_delta(&store, "lake/t", SequenceId(7), &manifest()).unwrap();
        assert_eq!(path.as_str(), "lake/t/_delta_log/00000000000000000007.json");
        let content = String::from_utf8(store.get(&path).unwrap().to_vec()).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 3);
        let commit: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(commit["commitInfo"]["polarisSequence"], 7);
        let add: serde_json::Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(add["add"]["stats"]["numRecords"], 100);
        let dv: serde_json::Value = serde_json::from_str(lines[2]).unwrap();
        assert_eq!(dv["add"]["deletionVector"]["cardinality"], 5);
    }

    #[test]
    fn publishes_snapshot_checkpoint() {
        let store = MemoryStore::new();
        let snap =
            TableSnapshot::from_manifests([(SequenceId(3), &manifest_with_files())]).unwrap();
        let path = publish_snapshot_as_delta(&store, "lake/t", &snap).unwrap();
        assert!(path
            .as_str()
            .ends_with("00000000000000000003.checkpoint.json"));
        let content = String::from_utf8(store.get(&path).unwrap().to_vec()).unwrap();
        assert_eq!(content.lines().count(), 2);
    }

    fn manifest_with_files() -> Manifest {
        Manifest::from_actions(vec![
            ManifestAction::add_file("lake/t/data/a.pcf", 10, 100, 0),
            ManifestAction::add_file("lake/t/data/b.pcf", 20, 200, 1),
        ])
    }

    #[test]
    fn sequential_publishes_sort_lexicographically() {
        let store = MemoryStore::new();
        for seq in [1u64, 2, 10, 100] {
            publish_manifest_as_delta(&store, "lake/t", SequenceId(seq), &manifest()).unwrap();
        }
        let listed = store.list("lake/t/_delta_log/").unwrap();
        let names: Vec<&str> = listed.iter().map(|m| m.path.file_name()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "zero-padded names must sort in commit order");
    }
}
