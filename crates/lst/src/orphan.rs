//! Orphaned transaction-manifest collection (recovery sweep).
//!
//! The engine uploads each transaction's manifest to
//! `{data_root}/_log/txn-{txn_id}-{table_id}.json` *before* the catalog
//! commit (the pipelined-upload prepare stage), and on an abort deletes it
//! again. A crash between upload and commit — or between abort and
//! cleanup — leaves the blob visible but referenced by no `Manifests`
//! row: an **orphan**. Orphans are harmless to correctness (nothing ever
//! reads an unreferenced manifest) but they leak storage and confuse
//! manual inspection, so recovery sweeps them.
//!
//! The sweep is safe at recovery time only: with no transaction in
//! flight, an unreferenced `_log` blob can never become referenced later
//! (manifest rows are inserted in the same atomic commit that would
//! reference the blob, and that commit either replayed or never
//! happened).

use crate::{LstError, LstResult};
use polaris_store::{BlobPath, ObjectStore};
use std::collections::HashSet;

/// Transaction manifests under `{data_root}/_log/` that `referenced` does
/// not name, ascending by path. `referenced` holds the manifest-file
/// paths of every `Manifests` row in the recovered catalog. Non-manifest
/// blobs under the prefix (there are none today) are left alone: only
/// `txn-*.json` names are candidates.
pub fn find_orphan_manifests(
    store: &dyn ObjectStore,
    data_root: &str,
    referenced: &HashSet<String>,
) -> LstResult<Vec<String>> {
    let prefix = format!("{data_root}/_log/");
    let mut orphans: Vec<String> = store
        .list(&prefix)?
        .into_iter()
        .map(|meta| meta.path.as_str().to_owned())
        .filter(|path| {
            let name = path.strip_prefix(&prefix).unwrap_or(path);
            name.starts_with("txn-") && name.ends_with(".json") && !referenced.contains(path)
        })
        .collect();
    orphans.sort();
    Ok(orphans)
}

/// Delete every orphan [`find_orphan_manifests`] reports for `data_root`.
/// Returns the deleted paths. A delete racing an external cleanup may
/// find the blob already gone; that is success, not an error.
pub fn collect_orphan_manifests(
    store: &dyn ObjectStore,
    data_root: &str,
    referenced: &HashSet<String>,
) -> LstResult<Vec<String>> {
    let orphans = find_orphan_manifests(store, data_root, referenced)?;
    for path in &orphans {
        let blob = BlobPath::new(path).map_err(LstError::from)?;
        match store.delete(&blob) {
            Ok(()) => {}
            Err(polaris_store::StoreError::NotFound { .. }) => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(orphans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_store::{Bytes, MemoryStore, Stamp};

    fn put(store: &MemoryStore, path: &str) {
        store
            .put(
                &BlobPath::new(path).unwrap(),
                Bytes::from_static(b"{}"),
                Stamp(1),
            )
            .unwrap();
    }

    #[test]
    fn unreferenced_txn_manifests_are_orphans() {
        let store = MemoryStore::new();
        put(&store, "lake/t/_log/txn-7-1001.json");
        put(&store, "lake/t/_log/txn-8-1001.json");
        put(&store, "lake/t/data/t7-s0-d0-a0.pcf");
        let referenced: HashSet<String> = ["lake/t/_log/txn-7-1001.json".to_owned()].into();
        let orphans = find_orphan_manifests(&store, "lake/t", &referenced).unwrap();
        assert_eq!(orphans, vec!["lake/t/_log/txn-8-1001.json".to_owned()]);
    }

    #[test]
    fn collect_deletes_only_orphans() {
        let store = MemoryStore::new();
        put(&store, "lake/t/_log/txn-7-1001.json");
        put(&store, "lake/t/_log/txn-9-1001.json");
        let referenced: HashSet<String> = ["lake/t/_log/txn-7-1001.json".to_owned()].into();
        let deleted = collect_orphan_manifests(&store, "lake/t", &referenced).unwrap();
        assert_eq!(deleted.len(), 1);
        assert!(store
            .get(&BlobPath::new("lake/t/_log/txn-7-1001.json").unwrap())
            .is_ok());
        assert!(store
            .get(&BlobPath::new("lake/t/_log/txn-9-1001.json").unwrap())
            .is_err());
    }

    #[test]
    fn non_manifest_names_are_ignored() {
        let store = MemoryStore::new();
        put(&store, "lake/t/_log/readme.txt");
        let orphans = find_orphan_manifests(&store, "lake/t", &HashSet::new()).unwrap();
        assert!(orphans.is_empty());
    }
}
